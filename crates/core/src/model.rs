//! The TFMAE network (Fig. 2/5): dual Transformer autoencoders over
//! temporal- and frequency-masked views, trained with the adversarial
//! contrastive objective (Eq. 14–15) and scored by per-observation
//! symmetric KL divergence (Eq. 16).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tfmae_nn::{
    encoding_table, Activation, Ctx, Linear, PatchEmbed, TransformerConfig, TransformerStack,
};
use tfmae_tensor::{Graph, ParamId, ParamStore, Var};

use crate::config::{AdversarialMode, ScoreKind, TfmaeConfig};
use crate::masking::frequency::{frequency_mask, FrequencyMaskData};
use crate::masking::temporal::{temporal_mask_patched, TemporalMask};

/// Preprocessed inputs for one batch of windows.
pub struct BatchInputs {
    /// Row-major `[B, win_len, dims]` values.
    pub values: Vec<f32>,
    /// Batch size.
    pub b: usize,
    /// Per-window temporal masks, at patch-token granularity: indices
    /// partition the `win_len / patch_len` tokens (= the raw time steps
    /// when `patch_len = 1`).
    pub masks_t: Vec<TemporalMask>,
    /// Per-window frequency-mask constants.
    pub masks_f: Vec<FrequencyMaskData>,
}

/// Final representations of the two branches (either may be disabled by an
/// ablation).
pub struct BranchOutputs {
    /// Temporal-view representation `P^(L)` at *row* resolution, shape
    /// `[B, T, D]`. With `patch_len > 1` each token's representation is
    /// replicated across its `P` rows so the contrastive objective and the
    /// Eq. 16 score keep their per-observation shapes; at `patch_len = 1`
    /// this is [`BranchOutputs::p_tokens`] itself.
    pub p: Option<Var>,
    /// Temporal-view representation at *token* resolution, shape
    /// `[B, T/P, D]` — the decoder's direct output, fed to the per-patch
    /// reconstruction head.
    pub p_tokens: Option<Var>,
    /// Frequency-view representation `F^(L)`, shape `[B, T, D]`.
    pub f: Option<Var>,
    /// The frequency-masked time-domain signal (Eq. 9–10 output before
    /// projection), shape `[B, T, N]`. Retains observation anomalies and
    /// removes pattern anomalies *by construction*.
    pub f_time: Option<Var>,
    /// The raw input leaf (used by reconstruction fallbacks).
    pub x: Var,
}

/// The TFMAE model: all parameters plus the forward wiring.
pub struct TfmaeModel {
    /// Hyper-parameters.
    pub cfg: TfmaeConfig,
    /// All trainable parameters.
    pub ps: ParamStore,
    dims: usize,
    patch: PatchEmbed,
    f_proj: Linear,
    mask_token: ParamId,
    m_re: ParamId,
    m_im: ParamId,
    t_encoder: TransformerStack,
    t_decoder: TransformerStack,
    f_decoder: TransformerStack,
    recon_f: Linear,
    posenc: Vec<f32>,
    posenc_t: Vec<f32>,
}

impl TfmaeModel {
    /// Builds and initializes the model for `dims`-dimensional inputs.
    pub fn new(cfg: TfmaeConfig, dims: usize) -> Self {
        cfg.validate().expect("invalid TfmaeConfig");
        assert!(dims >= 1, "dims must be >= 1");
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tc = TransformerConfig {
            d_model: cfg.d_model,
            heads: cfg.heads,
            d_ff: cfg.d_ff,
            layers: cfg.layers,
            dropout: cfg.dropout,
            activation: Activation::Gelu,
        };
        // Parameter registration order is load-bearing: it fixes both the
        // RNG draw sequence (bitwise `patch_len = 1` parity with the
        // pre-patch model) and the checkpoint layout. The patch-embed
        // pieces are therefore registered in the legacy positions and
        // assembled via `PatchEmbed::from_parts` afterwards. At
        // `patch_len = 1` every shape below matches the unpatched model, so
        // the Xavier/uniform draws are identical.
        let p = cfg.patch_len;
        let t_proj = Linear::new(&mut ps, &mut rng, "temporal.proj", dims * p, cfg.d_model);
        let f_proj = Linear::new(&mut ps, &mut rng, "frequency.proj", dims, cfg.d_model);
        let mask_token =
            ps.add("temporal.mask_token", tfmae_nn::init::uniform(&mut rng, cfg.d_model, 0.02), vec![cfg.d_model]);
        let m_re = ps.add("frequency.m_re", tfmae_nn::init::uniform(&mut rng, dims, 0.02), vec![dims]);
        let m_im = ps.add("frequency.m_im", tfmae_nn::init::uniform(&mut rng, dims, 0.02), vec![dims]);
        let t_encoder = TransformerStack::new(&mut ps, &mut rng, "temporal.enc", &tc);
        let t_decoder = TransformerStack::new(&mut ps, &mut rng, "temporal.dec", &tc);
        let f_decoder = TransformerStack::new(&mut ps, &mut rng, "frequency.dec", &tc);
        let recon_t = Linear::new(&mut ps, &mut rng, "temporal.recon", cfg.d_model, dims * p);
        let recon_f = Linear::new(&mut ps, &mut rng, "frequency.recon", cfg.d_model, dims);
        let posenc = encoding_table(cfg.win_len, cfg.d_model);
        // Temporal positional table over *token* positions; the frequency
        // branch keeps full row resolution. Same table when P = 1.
        let posenc_t = if p == 1 {
            posenc.clone()
        } else {
            encoding_table(cfg.win_len / p, cfg.d_model)
        };
        let patch = PatchEmbed::from_parts(t_proj, mask_token, recon_t, p, dims, cfg.d_model);
        Self {
            cfg,
            ps,
            dims,
            patch,
            f_proj,
            mask_token,
            m_re,
            m_im,
            t_encoder,
            t_decoder,
            f_decoder,
            recon_f,
            posenc,
            posenc_t,
        }
    }

    /// Input feature count `N`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Computes the two masks for a batch of windows (`values` is
    /// `[B, win_len, dims]` row-major). `rng` drives the Random mask
    /// variants only.
    pub fn prepare_batch(&self, values: Vec<f32>, b: usize, rng: &mut StdRng) -> BatchInputs {
        let t = self.cfg.win_len;
        let n = self.dims;
        assert_eq!(values.len(), b * t * n, "batch value size mismatch");
        let mut masks_t = Vec::with_capacity(b);
        let mut masks_f = Vec::with_capacity(b);
        for w in 0..b {
            let (mt, mf) = self.window_masks(&values[w * t * n..(w + 1) * t * n], rng);
            masks_t.push(mt);
            masks_f.push(mf);
        }
        BatchInputs { values, b, masks_t, masks_f }
    }

    /// Computes the two masks for a single window (Eq. 2 and Eq. 8). Masks
    /// depend only on the window contents (plus `rng` for the Random
    /// variants), so they can be cached across epochs. The temporal mask is
    /// at patch-token granularity (= raw time steps when `patch_len = 1`).
    pub fn window_masks(&self, win: &[f32], rng: &mut StdRng) -> (TemporalMask, FrequencyMaskData) {
        let t = self.cfg.win_len;
        let n = self.dims;
        assert_eq!(win.len(), t * n, "window size mismatch");
        let mt = temporal_mask_patched(
            win,
            t,
            n,
            self.cfg.patch_len,
            self.cfg.masked_tokens(),
            self.cfg.cv_window,
            self.cfg.temporal_mask,
            self.cfg.use_fft_cv,
            rng,
        );
        let mf = frequency_mask(win, t, n, self.cfg.masked_freq_bins(), self.cfg.freq_mask, rng);
        (mt, mf)
    }

    /// Runs both branches (subject to ablation switches) on a prepared batch.
    pub fn forward(&self, ctx: &Ctx, batch: &BatchInputs) -> BranchOutputs {
        let g = ctx.g;
        let t = self.cfg.win_len;
        let n = self.dims;
        let b = batch.b;
        let x = g.constant(batch.values.clone(), vec![b, t, n]);

        let p_tokens = self.cfg.use_temporal_branch.then(|| self.temporal_branch(ctx, x, batch));
        let p = p_tokens.map(|tok| self.expand_tokens_to_rows(ctx, tok, b));
        let ff = self.cfg.use_frequency_branch.then(|| self.frequency_branch(ctx, batch));
        let (f, f_time) = match ff {
            Some((f, ft)) => (Some(f), Some(ft)),
            None => (None, None),
        };
        BranchOutputs { p, p_tokens, f, f_time, x }
    }

    /// `[B, T/P, D] → [B, T, D]`: replicates each token representation
    /// across its `P` member rows (row `t` reads token `t / P`), so the
    /// contrastive objective and Eq. 16 stay per-observation. Identity at
    /// `patch_len = 1` — no tape node is added, preserving the legacy op
    /// sequence bitwise. Gradients scatter-add back, so each token
    /// accumulates its rows' contributions exactly.
    fn expand_tokens_to_rows(&self, ctx: &Ctx, tokens: Var, b: usize) -> Var {
        let p = self.cfg.patch_len;
        if p == 1 {
            return tokens;
        }
        let t = self.cfg.win_len;
        let mut idx = Vec::with_capacity(b * t);
        for _ in 0..b {
            idx.extend((0..t).map(|row| row / p));
        }
        ctx.g.gather_rows(tokens, &idx, t)
    }

    fn posenc_for(&self, g: &Graph, b: usize, positions_per_window: &[Vec<usize>], d: usize) -> Var {
        let k = positions_per_window[0].len();
        let mut data = Vec::with_capacity(b * k * d);
        for pos in positions_per_window {
            debug_assert_eq!(pos.len(), k);
            // Gather rows from the precomputed `self.posenc_t` token table
            // (identical values to `encoding_for_positions`, without
            // re-deriving the powf/sin/cos per element on every batch).
            for &t in pos {
                data.extend_from_slice(&self.posenc_t[t * d..(t + 1) * d]);
            }
        }
        g.constant(data, vec![b, k, d])
    }

    /// Full positional table over the temporal branch's `T/P` token
    /// positions (equals [`TfmaeModel::full_posenc`] when `patch_len = 1`).
    fn full_posenc_t(&self, g: &Graph, b: usize) -> Var {
        let tokens = self.cfg.num_patch_tokens();
        let d = self.cfg.d_model;
        let mut data = Vec::with_capacity(b * tokens * d);
        for _ in 0..b {
            data.extend_from_slice(&self.posenc_t);
        }
        g.constant(data, vec![b, tokens, d])
    }

    fn full_posenc(&self, g: &Graph, b: usize) -> Var {
        let t = self.cfg.win_len;
        let d = self.cfg.d_model;
        let mut data = Vec::with_capacity(b * t * d);
        for _ in 0..b {
            data.extend_from_slice(&self.posenc);
        }
        g.constant(data, vec![b, t, d])
    }

    /// The temporal masked autoencoder (right of Fig. 5): patchify, encode
    /// unmasked patch tokens, re-insert learnable mask tokens at their
    /// original token positions, decode the full token sequence. Returns
    /// `[B, T/P, D]`; at `patch_len = 1` the op sequence is exactly the
    /// pre-patch row-level branch (patchify is a no-op and `T/P = T`).
    fn temporal_branch(&self, ctx: &Ctx, x: Var, batch: &BatchInputs) -> Var {
        let g = ctx.g;
        let t = self.cfg.num_patch_tokens();
        let d = self.cfg.d_model;
        let b = batch.b;
        let i_t = batch.masks_t[0].masked.len();
        let x = self.patch.patchify(ctx, x);

        if i_t == 0 {
            // No masking: the branch degenerates to a plain encoder-decoder.
            let u = self.patch.proj.forward_3d(ctx, x);
            let u = g.add(u, self.full_posenc_t(g, b));
            let enc = if self.cfg.temporal_encoder { self.t_encoder.forward(ctx, u) } else { u };
            return if self.cfg.temporal_decoder { self.t_decoder.forward(ctx, enc) } else { enc };
        }

        let k_un = t - i_t;
        let mut un_idx = Vec::with_capacity(b * k_un);
        let mut m_idx = Vec::with_capacity(b * i_t);
        let mut un_pos = Vec::with_capacity(b);
        let mut m_pos = Vec::with_capacity(b);
        for mask in &batch.masks_t {
            debug_assert_eq!(mask.masked.len(), i_t, "uneven mask sizes in batch");
            un_idx.extend_from_slice(&mask.unmasked);
            m_idx.extend_from_slice(&mask.masked);
            un_pos.push(mask.unmasked.clone());
            m_pos.push(mask.masked.clone());
        }

        // Unmasked path: gather → project → +PE → encoder (Eq. 3 top).
        let u_raw = g.gather_rows(x, &un_idx, k_un);
        let u = self.patch.proj.forward_3d(ctx, u_raw);
        let u = g.add(u, self.posenc_for(g, b, &un_pos, d));
        let enc = if self.cfg.temporal_encoder { self.t_encoder.forward(ctx, u) } else { u };

        // Masked path: learnable token + PE at original positions (Eq. 3
        // bottom + §IV-B2 "Decoder").
        let token = g.param(ctx.ps, self.mask_token);
        let tokens = g.broadcast_to(token, &[b, i_t, d]);
        let tokens = g.add(tokens, self.posenc_for(g, b, &m_pos, d));

        // Interleave both back onto the token timeline and decode.
        let full = g.add(g.scatter_rows(enc, &un_idx, t), g.scatter_rows(tokens, &m_idx, t));
        if self.cfg.temporal_decoder {
            self.t_decoder.forward(ctx, full)
        } else {
            full
        }
    }

    /// The frequency masked autoencoder (left of Fig. 5): masked spectrum →
    /// learnable replacement → IDFT → projection → decoder-only stack.
    fn frequency_branch(&self, ctx: &Ctx, batch: &BatchInputs) -> (Var, Var) {
        let g = ctx.g;
        let t = self.cfg.win_len;
        let n = self.dims;
        let b = batch.b;

        let mut base = Vec::with_capacity(b * t * n);
        let mut ca = Vec::with_capacity(b * t * n);
        let mut cb = Vec::with_capacity(b * t * n);
        for m in &batch.masks_f {
            base.extend_from_slice(&m.base);
            ca.extend_from_slice(&m.a);
            cb.extend_from_slice(&m.b);
        }
        let base = g.constant(base, vec![b, t, n]);
        let ca = g.constant(ca, vec![b, t, n]);
        let cb = g.constant(cb, vec![b, t, n]);
        let m_re = g.param(ctx.ps, self.m_re);
        let m_im = g.param(ctx.ps, self.m_im);
        // f_time = base + A·Re(m) + B·Im(m)  (exactly Eq. 9 + Eq. 10's IDFT,
        // reparameterized linearly — see masking::frequency).
        let f_time = g.add(base, g.add(g.mul(ca, m_re), g.mul(cb, m_im)));

        let f = self.f_proj.forward_3d(ctx, f_time);
        let f = g.add(f, self.full_posenc(g, b));
        let repr = if self.cfg.frequency_decoder { self.f_decoder.forward(ctx, f) } else { f };
        (repr, f_time)
    }

    /// The training objective for one batch (Eq. 14/15 or the
    /// reconstruction fallback when a branch is ablated). Returns a scalar.
    pub fn training_loss(&self, ctx: &Ctx, out: &BranchOutputs) -> Var {
        let g = ctx.g;
        match (out.p, out.f) {
            (Some(p), Some(f)) => {
                // Masked-reconstruction grounding: both autoencoders must
                // *recover* the input from their purified views (the
                // "recovering masked observations/patterns" of Fig. 5).
                // Without this term Eq. 15 is degenerate — nothing ties the
                // representations to the data (DESIGN.md §3). The temporal
                // head reconstructs raw patch content from token
                // representations (`[B,T/P,D] → [B,T,N]`), so the MSE is
                // against the same `[B,T,N]` target at every patch_len.
                let p_tok = out.p_tokens.expect("p_tokens accompanies p");
                let rec_t = g.mse(self.patch.reconstruct(ctx, p_tok), out.x);
                let rec_f = g.mse(self.recon_f.forward_3d(ctx, f), out.x);
                let ground = g.scale(g.add(rec_t, rec_f), self.cfg.recon_weight);

                let ps_ = g.softmax_last(p);
                let fs = g.softmax_last(f);
                let contrastive = match self.cfg.adversarial {
                    AdversarialMode::Full => {
                        // min_F: align frequency view to frozen temporal view;
                        // max_P: push temporal view away from frozen frequency view.
                        let align = g.mean_all(g.sym_kl_last(g.detach(ps_), fs));
                        let repel = g.mean_all(g.sym_kl_last(ps_, g.detach(fs)));
                        g.sub(align, g.scale(repel, self.cfg.adv_weight))
                    }
                    AdversarialMode::NoAdversarial => {
                        g.mean_all(g.sym_kl_last(g.detach(ps_), fs))
                    }
                    AdversarialMode::Reversed => {
                        let align = g.mean_all(g.sym_kl_last(g.detach(fs), ps_));
                        let repel = g.mean_all(g.sym_kl_last(fs, g.detach(ps_)));
                        g.sub(align, g.scale(repel, self.cfg.adv_weight))
                    }
                };
                g.add(ground, g.scale(contrastive, self.cfg.contrastive_weight))
            }
            // Single-view ablations fall back to masked reconstruction.
            (Some(_), None) => {
                let p_tok = out.p_tokens.expect("p_tokens accompanies p");
                let rec = self.patch.reconstruct(ctx, p_tok);
                g.mse(rec, out.x)
            }
            (None, Some(f)) => {
                let rec = self.recon_f.forward_3d(ctx, f);
                g.mse(rec, out.x)
            }
            (None, None) => unreachable!("config validation requires one branch"),
        }
    }

    /// Per-observation anomaly-score *components* for one batch, both
    /// `[B * T]` row-major:
    /// * `.0` — the Eq. 16 symmetric KL between the softmax-normalized
    ///   latent views;
    /// * `.1` — the dual-reconstruction discrepancy in data space.
    ///
    /// For single-view ablations both components equal the plain
    /// reconstruction error of the remaining view. Combination into one
    /// score happens at series level (see
    /// [`TfmaeDetector`](crate::TfmaeDetector)) so normalization uses
    /// global statistics rather than per-batch ones.
    pub fn anomaly_score_components(&self, ctx: &Ctx, out: &BranchOutputs) -> (Vec<f32>, Vec<f32>) {
        let g = ctx.g;
        match (out.p, out.f) {
            (Some(p), Some(f)) => {
                let ps_ = g.softmax_last(p);
                let fs = g.softmax_last(f);
                let kl = g.value(g.sym_kl_last(ps_, fs));
                // Dual-view discrepancy in data space: the temporal
                // branch's *recovery* vs the frequency-masked signal
                // itself. The latter retains observation anomalies and
                // drops pattern anomalies by construction, so disagreement
                // marks exactly the paper's "normal-recovered vs
                // original-abnormal" pairs. The per-patch head folds token
                // representations back to `[B,T,N]` rows, so the score
                // stays per-observation at every patch_len (Eq. 17
                // calibration unchanged).
                let p_tok = out.p_tokens.expect("p_tokens accompanies p");
                let rt = self.patch.reconstruct(ctx, p_tok);
                let target = out.f_time.expect("frequency branch provides f_time");
                // Max over channels rather than mean: a single-channel
                // anomaly must not be diluted by N−1 well-aligned channels
                // (MSL/SMAP have N = 55/25 with few affected channels).
                let sq = g.value(g.square(g.sub(rt, target)));
                let n = self.dims;
                let dual = sq
                    .chunks(n)
                    .map(|row| row.iter().fold(0.0f32, |a, &b| a.max(b)))
                    .collect();
                (kl, dual)
            }
            (Some(_), None) => {
                let p_tok = out.p_tokens.expect("p_tokens accompanies p");
                let rec = self.patch.reconstruct(ctx, p_tok);
                let err = g.square(g.sub(rec, out.x));
                let e = g.value(g.mean_last(err, false));
                (e.clone(), e)
            }
            (None, Some(f)) => {
                let rec = self.recon_f.forward_3d(ctx, f);
                let err = g.square(g.sub(rec, out.x));
                let e = g.value(g.mean_last(err, false));
                (e.clone(), e)
            }
            (None, None) => unreachable!(),
        }
    }

    /// Per-observation anomaly scores for one batch, `[B * T]` row-major,
    /// combined per the configured [`ScoreKind`] with *batch-local*
    /// normalization. Prefer the detector's series-level scoring, which
    /// normalizes globally.
    pub fn anomaly_scores(&self, ctx: &Ctx, out: &BranchOutputs) -> Vec<f32> {
        let (kl, dual) = self.anomaly_score_components(ctx, out);
        combine_scores(self.cfg.score, &kl, &dual)
    }
}

/// Combines the two score components per the configured criterion; each
/// component is normalized by its mean over the provided span so neither
/// scale dominates.
pub fn combine_scores(kind: ScoreKind, kl: &[f32], dual: &[f32]) -> Vec<f32> {
    match kind {
        ScoreKind::LatentKl => kl.to_vec(),
        ScoreKind::DualRecon => dual.to_vec(),
        ScoreKind::Combined => {
            let ma: f32 = kl.iter().sum::<f32>() / kl.len().max(1) as f32;
            let mb: f32 = dual.iter().sum::<f32>() / dual.len().max(1) as f32;
            kl.iter()
                .zip(dual.iter())
                .map(|(x, y)| x / (ma + 1e-12) + y / (mb + 1e-12))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(model: &TfmaeModel, b: usize, seed: u64) -> BatchInputs {
        let t = model.cfg.win_len;
        let n = model.dims();
        let values: Vec<f32> = (0..b * t * n)
            .map(|i| ((i as f32 * 0.37).sin() + (i as f32 * 0.011).cos()) * 0.5)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        model.prepare_batch(values, b, &mut rng)
    }

    fn tiny_model() -> TfmaeModel {
        TfmaeModel::new(TfmaeConfig::tiny(), 3)
    }

    #[test]
    fn forward_shapes() {
        let m = tiny_model();
        let batch = toy_batch(&m, 2, 0);
        let g = Graph::new();
        let ctx = Ctx::eval(&g, &m.ps);
        let out = m.forward(&ctx, &batch);
        let p = out.p.unwrap();
        let f = out.f.unwrap();
        assert_eq!(g.shape(p), vec![2, 32, 16]);
        assert_eq!(g.shape(f), vec![2, 32, 16]);
    }

    #[test]
    fn loss_is_finite_and_backpropagates() {
        let mut m = tiny_model();
        let batch = toy_batch(&m, 2, 1);
        let g = Graph::new();
        let ctx = Ctx::train(&g, &m.ps, 0);
        let out = m.forward(&ctx, &batch);
        let loss = m.training_loss(&ctx, &out);
        assert!(g.scalar_value(loss).is_finite());
        g.backward_params(loss, &mut m.ps);
        assert!(m.ps.grad_norm() > 0.0, "some parameter must receive gradient");
        assert!(m.ps.grad_norm().is_finite());
    }

    #[test]
    fn adversarial_stop_gradients_route_correctly() {
        // Under Full mode, the align term updates only the frequency branch
        // and the repel term only the temporal branch. The frequency mask
        // params m_re/m_im belong to the frequency branch; the temporal
        // mask token belongs to the temporal branch. Both must receive
        // gradient under Full, and the temporal token must receive none
        // under NoAdversarial (where P is detached).
        let mut m = tiny_model();
        let batch = toy_batch(&m, 2, 2);
        let g = Graph::new();
        let ctx = Ctx::train(&g, &m.ps, 0);
        let out = m.forward(&ctx, &batch);
        let loss = m.training_loss(&ctx, &out);
        g.backward_params(loss, &mut m.ps);
        let token_grad: f32 = m.ps.get(m.mask_token).grad.iter().map(|v| v.abs()).sum();
        assert!(token_grad > 0.0, "Full mode must update the temporal branch");

        // Disable the reconstruction grounding so only the contrastive
        // gradient routing is observed.
        let mut m2 = TfmaeModel::new(
            TfmaeConfig {
                adversarial: AdversarialMode::NoAdversarial,
                recon_weight: 0.0,
                ..TfmaeConfig::tiny()
            },
            3,
        );
        let batch = toy_batch(&m2, 2, 2);
        let g = Graph::new();
        let ctx = Ctx::train(&g, &m2.ps, 0);
        let out = m2.forward(&ctx, &batch);
        let loss = m2.training_loss(&ctx, &out);
        g.backward_params(loss, &mut m2.ps);
        let token_grad: f32 = m2.ps.get(m2.mask_token).grad.iter().map(|v| v.abs()).sum();
        assert_eq!(token_grad, 0.0, "Eq. 14 halts the temporal gradient");
        let mre_grad: f32 = m2.ps.get(m2.m_re).grad.iter().map(|v| v.abs()).sum();
        assert!(mre_grad > 0.0, "frequency branch must still learn");
    }

    #[test]
    fn scores_have_one_value_per_observation() {
        let m = tiny_model();
        let batch = toy_batch(&m, 3, 3);
        let g = Graph::new();
        let ctx = Ctx::eval(&g, &m.ps);
        let out = m.forward(&ctx, &batch);
        let scores = m.anomaly_scores(&ctx, &out);
        assert_eq!(scores.len(), 3 * 32);
        assert!(scores.iter().all(|s| s.is_finite() && *s >= -1e-6));
    }

    #[test]
    fn single_branch_ablations_run() {
        for (tem, fre) in [(true, false), (false, true)] {
            let cfg = TfmaeConfig {
                use_temporal_branch: tem,
                use_frequency_branch: fre,
                ..TfmaeConfig::tiny()
            };
            let mut m = TfmaeModel::new(cfg, 2);
            let batch = toy_batch(&m, 2, 4);
            let g = Graph::new();
            let ctx = Ctx::train(&g, &m.ps, 0);
            let out = m.forward(&ctx, &batch);
            let loss = m.training_loss(&ctx, &out);
            assert!(g.scalar_value(loss).is_finite());
            let scores = m.anomaly_scores(&ctx, &out);
            assert_eq!(scores.len(), 2 * 32);
            g.backward_params(loss, &mut m.ps);
        }
    }

    #[test]
    fn component_ablations_run() {
        for (te, td, fd) in [(false, true, true), (true, false, true), (true, true, false)] {
            let cfg = TfmaeConfig {
                temporal_encoder: te,
                temporal_decoder: td,
                frequency_decoder: fd,
                ..TfmaeConfig::tiny()
            };
            let m = TfmaeModel::new(cfg, 2);
            let batch = toy_batch(&m, 1, 5);
            let g = Graph::new();
            let ctx = Ctx::eval(&g, &m.ps);
            let out = m.forward(&ctx, &batch);
            assert_eq!(g.shape(out.p.unwrap()), vec![1, 32, 16]);
        }
    }

    #[test]
    fn patched_forward_keeps_row_level_scores() {
        // P = 4 on the tiny config: 8 tokens, but p/f/scores stay [B, T, ·].
        let cfg = TfmaeConfig { patch_len: 4, ..TfmaeConfig::tiny() };
        let mut m = TfmaeModel::new(cfg, 3);
        let batch = toy_batch(&m, 2, 9);
        assert!(batch.masks_t[0].masked.iter().all(|&i| i < 8), "token-level mask");
        assert_eq!(batch.masks_t[0].masked.len(), 2); // ⌊8 · 0.25⌋
        let g = Graph::new();
        let ctx = Ctx::train(&g, &m.ps, 0);
        let out = m.forward(&ctx, &batch);
        assert_eq!(g.shape(out.p_tokens.unwrap()), vec![2, 8, 16]);
        assert_eq!(g.shape(out.p.unwrap()), vec![2, 32, 16]);
        assert_eq!(g.shape(out.f.unwrap()), vec![2, 32, 16]);
        let scores = m.anomaly_scores(&ctx, &out);
        assert_eq!(scores.len(), 2 * 32);
        assert!(scores.iter().all(|s| s.is_finite()));
        let loss = m.training_loss(&ctx, &out);
        assert!(g.scalar_value(loss).is_finite());
        g.backward_params(loss, &mut m.ps);
        assert!(m.ps.grad_norm() > 0.0 && m.ps.grad_norm().is_finite());
        // The patch projection must have patched shapes registered.
        assert_eq!(m.ps.get(m.patch.proj.w).shape, vec![3 * 4, 16]);
        assert_eq!(m.ps.get(m.patch.recon.w).shape, vec![16, 3 * 4]);
    }

    #[test]
    fn patched_single_branch_ablations_run() {
        for (tem, fre) in [(true, false), (false, true)] {
            let cfg = TfmaeConfig {
                patch_len: 8,
                use_temporal_branch: tem,
                use_frequency_branch: fre,
                ..TfmaeConfig::tiny()
            };
            let mut m = TfmaeModel::new(cfg, 2);
            let batch = toy_batch(&m, 2, 10);
            let g = Graph::new();
            let ctx = Ctx::train(&g, &m.ps, 0);
            let out = m.forward(&ctx, &batch);
            let loss = m.training_loss(&ctx, &out);
            assert!(g.scalar_value(loss).is_finite());
            assert_eq!(m.anomaly_scores(&ctx, &out).len(), 2 * 32);
            g.backward_params(loss, &mut m.ps);
        }
    }

    #[test]
    fn zero_temporal_ratio_runs_unmasked_path() {
        let cfg = TfmaeConfig { r_temporal: 0.0, ..TfmaeConfig::tiny() };
        let m = TfmaeModel::new(cfg, 2);
        let batch = toy_batch(&m, 2, 6);
        assert!(batch.masks_t[0].masked.is_empty());
        let g = Graph::new();
        let ctx = Ctx::eval(&g, &m.ps);
        let out = m.forward(&ctx, &batch);
        assert_eq!(g.shape(out.p.unwrap()), vec![2, 32, 16]);
    }
}
