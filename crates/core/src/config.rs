//! TFMAE configuration, including every ablation switch of Tables IV & V.

use serde::{Deserialize, Serialize};

/// How temporal-mask candidates are selected (§IV-A1 and Table V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemporalMaskKind {
    /// Coefficient of variation over a trailing window (the paper's method).
    Cv,
    /// Standard deviation only (`w/ SMT`).
    Std,
    /// Uniformly random indices (`w/ RMT`).
    Random,
    /// No temporal masking (`w/o MT`).
    None,
}

/// How frequency-mask bins are selected (§IV-A2 and Table V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FreqMaskKind {
    /// Smallest-amplitude bins (the paper's method).
    Amplitude,
    /// Highest-frequency bins (`w/ HMF`).
    HighFreq,
    /// Uniformly random bins (`w/ RMF`).
    Random,
    /// No frequency masking (`w/o MF`).
    None,
}

/// Anomaly-score criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreKind {
    /// Eq. 16: symmetric KL between the softmax-normalized latent
    /// representations of the two views (the paper's criterion).
    LatentKl,
    /// Discrepancy between the two views' *reconstructions* in data space:
    /// `mean_n (rec_T[t,n] − rec_F[t,n])²`. Same contrastive principle
    /// ("normal-recovered vs original-abnormal views disagree"), measured
    /// after the recovery heads; sharper on short training schedules.
    DualRecon,
    /// Sum of both (latent KL is scale-normalized by its window mean).
    Combined,
}

/// Objective-function variants (Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversarialMode {
    /// Eq. 15: `min_F max_P symKL` with stop-gradients (the paper's method).
    Full,
    /// `w/o L_adv`: the pure contrastive objective of Eq. 14 (gradient of
    /// the temporal representation halted).
    NoAdversarial,
    /// `w/ L_radv`: roles of `P` and `F` swapped in Eq. 15.
    Reversed,
}

/// Full hyper-parameter set for TFMAE.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TfmaeConfig {
    /// Model input length (the paper fixes 100, §V-B).
    pub win_len: usize,
    /// Latent width `D` (paper default 128; the CPU harness default is 64 —
    /// Fig. 7 sweeps both).
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Transformer layers `L` (paper default 3).
    pub layers: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Sliding-window length `W` for the coefficient of variation (paper 10).
    pub cv_window: usize,
    /// Temporal masking ratio `r_T` (fraction, e.g. 0.55).
    pub r_temporal: f64,
    /// Frequency masking ratio `r_F` (fraction of rFFT bins).
    pub r_frequency: f64,
    /// Adam learning rate (paper 1e-4).
    pub lr: f32,
    /// Training epochs (paper uses 1 on the full-size datasets; the scaled
    /// simulators need a few more passes to see as many windows).
    pub epochs: usize,
    /// Windows per batch (paper 64).
    pub batch: usize,
    /// Use the FFT-accelerated CV (Eq. 5); `false` is the `w/o FFT` ablation.
    pub use_fft_cv: bool,
    /// Temporal masking variant.
    pub temporal_mask: TemporalMaskKind,
    /// Frequency masking variant.
    pub freq_mask: FreqMaskKind,
    /// Objective variant.
    pub adversarial: AdversarialMode,
    /// `w/o Tem`: disable the temporal view entirely.
    pub use_temporal_branch: bool,
    /// `w/o Fre`: disable the frequency view entirely.
    pub use_frequency_branch: bool,
    /// `w/o TE`: drop the temporal encoder (decoder sees raw projections).
    pub temporal_encoder: bool,
    /// `w/o TD`: drop the temporal decoder.
    pub temporal_decoder: bool,
    /// `w/o FD`: drop the frequency decoder.
    pub frequency_decoder: bool,
    /// Weight of the masked-reconstruction grounding terms (the MAE
    /// "recovery" of Fig. 5; Eq. 15 alone does not tie representations to
    /// the data — see DESIGN.md §3).
    pub recon_weight: f32,
    /// Weight of the adversarial contrastive objective (Eq. 14–15).
    pub contrastive_weight: f32,
    /// Relative weight of the max-phase (repel) term inside Eq. 15. The
    /// paper trains a single epoch at lr 1e-4, which implicitly keeps the
    /// max phase from dominating; on the scaled simulators the longer
    /// schedules need an explicit weight (DESIGN.md §3).
    pub adv_weight: f32,
    /// Stride between training windows (default = `win_len`, i.e.
    /// non-overlapping tiles; smaller values yield more training windows on
    /// the scaled simulators).
    pub train_stride: usize,
    /// Anomaly-score criterion (Eq. 16 by default).
    pub score: ScoreKind,
    /// RNG seed controlling init, dropout and random-mask variants.
    pub seed: u64,
    /// Temporal patch length `P` (Ti-MAE-style tokenization). The temporal
    /// branch operates on `win_len / P` patch tokens of `P · dims` raw
    /// values each, cutting attention FLOPs ~`P²`x; `P = 1` is bitwise
    /// identical to the unpatched model. The frequency branch always stays
    /// at raw rFFT-bin resolution (TFAD's motivation). Must divide
    /// `win_len`. Absent from older serialized configs, so it defaults
    /// to 1 on deserialization.
    #[serde(default = "default_patch_len")]
    pub patch_len: usize,
}

// Referenced from the serde attribute above; minimal offline derives ignore
// the attribute value, so the reference is allowed to vanish.
#[allow(dead_code)]
fn default_patch_len() -> usize {
    1
}

impl Default for TfmaeConfig {
    fn default() -> Self {
        Self {
            win_len: 100,
            d_model: 64,
            heads: 4,
            d_ff: 128,
            layers: 2,
            dropout: 0.0,
            cv_window: 10,
            r_temporal: 0.25,
            r_frequency: 0.25,
            lr: 1e-3,
            epochs: 3,
            batch: 32,
            use_fft_cv: true,
            temporal_mask: TemporalMaskKind::Cv,
            freq_mask: FreqMaskKind::Amplitude,
            adversarial: AdversarialMode::Full,
            use_temporal_branch: true,
            use_frequency_branch: true,
            temporal_encoder: true,
            temporal_decoder: true,
            frequency_decoder: true,
            recon_weight: 1.0,
            contrastive_weight: 1.0,
            adv_weight: 0.05,
            train_stride: 50,
            score: ScoreKind::Combined,
            seed: 7,
            patch_len: 1,
        }
    }
}

impl TfmaeConfig {
    /// The paper's exact §V-A4 setting (slower on CPU; Fig. 7 covers the
    /// difference to the harness default).
    pub fn paper() -> Self {
        Self { d_model: 128, d_ff: 256, layers: 3, lr: 1e-4, epochs: 1, batch: 64, ..Self::default() }
    }

    /// A small fast configuration for tests.
    pub fn tiny() -> Self {
        Self {
            win_len: 32,
            d_model: 16,
            heads: 2,
            d_ff: 32,
            layers: 1,
            epochs: 2,
            batch: 16,
            train_stride: 32,
            ..Self::default()
        }
    }

    /// Default learning rate for serving-side background fine-tuning
    /// (`lr / 10`): online updates see far fewer, more correlated windows
    /// than `fit`, so they step an order of magnitude more cautiously (see
    /// [`crate::adapt`]).
    pub fn finetune_lr(&self) -> f32 {
        self.lr * 0.1
    }

    /// Maps the legacy "`patch_len` absent" encoding to `patch_len = 1`.
    ///
    /// Real serde fills the missing field via its `default = "…"` function
    /// (already 1), but minimal deserializers that only honor plain
    /// `#[serde(default)]` fill it with `usize::default()` — 0, which no
    /// valid config can hold. Checkpoint loading funnels configs through
    /// here so pre-refactor files land on the unpatched model either way.
    pub fn normalized(mut self) -> Self {
        if self.patch_len == 0 {
            self.patch_len = 1;
        }
        self
    }

    /// Number of masked observations `I_T = ⌊r_T · |S|⌋` (Eq. 2).
    pub fn masked_time_steps(&self) -> usize {
        ((self.win_len as f64) * self.r_temporal).floor() as usize
    }

    /// Number of temporal patch tokens `T / P` the temporal branch
    /// attends over. Equals `win_len` when `patch_len = 1`.
    pub fn num_patch_tokens(&self) -> usize {
        self.win_len / self.patch_len.max(1)
    }

    /// Number of masked temporal *tokens*: Eq. 2's floor formula applied
    /// at token granularity, `⌊r_T · T/P⌋`. Identical to
    /// [`masked_time_steps`](Self::masked_time_steps) at `patch_len = 1`.
    pub fn masked_tokens(&self) -> usize {
        ((self.num_patch_tokens() as f64) * self.r_temporal).floor() as usize
    }

    /// Number of masked frequency bins `I_F = ⌊r_F · bins⌋` (Eq. 8), over
    /// the `win_len/2 + 1` unique rFFT bins.
    pub fn masked_freq_bins(&self) -> usize {
        let bins = self.win_len / 2 + 1;
        ((bins as f64) * self.r_frequency).floor() as usize
    }

    /// Validates invariants; call before training.
    pub fn validate(&self) -> Result<(), String> {
        if self.win_len < 4 {
            return Err(format!("win_len must be >= 4, got {}", self.win_len));
        }
        if self.d_model % self.heads != 0 {
            return Err(format!("d_model {} must divide into {} heads", self.d_model, self.heads));
        }
        if !(0.0..1.0).contains(&self.r_temporal) || !(0.0..1.0).contains(&self.r_frequency) {
            return Err("masking ratios must be in [0, 1)".into());
        }
        if self.masked_time_steps() >= self.win_len {
            return Err("temporal mask would cover the whole window".into());
        }
        if !self.use_temporal_branch && !self.use_frequency_branch {
            return Err("at least one branch must be enabled".into());
        }
        if self.cv_window == 0 {
            return Err("cv_window must be >= 1".into());
        }
        if self.train_stride == 0 {
            return Err("train_stride must be >= 1".into());
        }
        if self.recon_weight < 0.0 || self.contrastive_weight < 0.0 || self.adv_weight < 0.0 {
            return Err("loss weights must be non-negative".into());
        }
        if self.patch_len == 0 {
            return Err("patch_len must be >= 1".into());
        }
        if self.win_len % self.patch_len != 0 {
            return Err(format!(
                "patch_len {} must divide win_len {}",
                self.patch_len, self.win_len
            ));
        }
        // Mirror the whole-window guard at token granularity: the encoder
        // needs at least 2 unmasked tokens for attention to relate anything.
        // Gated on patch_len > 1 so the legacy (P = 1) acceptance surface is
        // untouched — there the `masked_time_steps() >= win_len` guard above
        // already rejects full-window masks and win_len >= 4 keeps ≥ 2
        // unmasked rows for any r_temporal < 1.
        if self.patch_len > 1 && self.num_patch_tokens() - self.masked_tokens() < 2 {
            return Err(format!(
                "patch_len {} leaves {} unmasked patch tokens (< 2) at r_temporal {}",
                self.patch_len,
                self.num_patch_tokens() - self.masked_tokens(),
                self.r_temporal
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TfmaeConfig::default().validate().unwrap();
        TfmaeConfig::paper().validate().unwrap();
        TfmaeConfig::tiny().validate().unwrap();
    }

    #[test]
    fn mask_counts_follow_floor_formulas() {
        let cfg = TfmaeConfig { win_len: 100, r_temporal: 0.55, r_frequency: 0.40, ..Default::default() };
        assert_eq!(cfg.masked_time_steps(), 55);
        assert_eq!(cfg.masked_freq_bins(), 20); // ⌊51 · 0.4⌋
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = TfmaeConfig::default();
        cfg.heads = 3; // 64 % 3 != 0
        assert!(cfg.validate().is_err());

        let mut cfg = TfmaeConfig::default();
        cfg.r_temporal = 1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = TfmaeConfig::default();
        cfg.use_temporal_branch = false;
        cfg.use_frequency_branch = false;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = TfmaeConfig::paper();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: TfmaeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.d_model, 128);
        assert_eq!(back.adversarial, AdversarialMode::Full);
        assert_eq!(back.patch_len, 1);
    }

    #[test]
    fn legacy_config_json_without_patch_len_defaults_to_one() {
        // Serialized configs from before the patch-tokenization refactor
        // (checkpoints included) carry no `patch_len` key.
        let json = serde_json::to_string(&TfmaeConfig::paper()).unwrap();
        assert!(json.contains("\"patch_len\":1"), "got {json}");
        let stripped =
            json.replace(",\"patch_len\":1", "").replace("\"patch_len\":1,", "");
        assert!(!stripped.contains("patch_len"));
        let back = serde_json::from_str::<TfmaeConfig>(&stripped).unwrap().normalized();
        assert_eq!(back.patch_len, 1);
        back.validate().unwrap();
    }

    #[test]
    fn token_counts_follow_floor_formulas() {
        let cfg = TfmaeConfig { win_len: 100, patch_len: 5, r_temporal: 0.55, ..Default::default() };
        assert_eq!(cfg.num_patch_tokens(), 20);
        assert_eq!(cfg.masked_tokens(), 11); // ⌊20 · 0.55⌋
        // At P = 1, token accounting coincides with time-step accounting.
        let flat = TfmaeConfig { win_len: 100, r_temporal: 0.55, ..Default::default() };
        assert_eq!(flat.masked_tokens(), flat.masked_time_steps());
    }

    #[test]
    fn patch_len_validation_edge_cases() {
        // Must divide win_len.
        let cfg = TfmaeConfig { patch_len: 7, ..Default::default() }; // 100 % 7 != 0
        assert!(cfg.validate().is_err());
        // Zero is rejected.
        let cfg = TfmaeConfig { patch_len: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
        // 2 tokens, 1 masked, 1 unmasked -> fewer than 2 unmasked tokens.
        let cfg = TfmaeConfig { patch_len: 50, r_temporal: 0.5, ..Default::default() };
        assert!(cfg.validate().is_err());
        // 2 tokens, 0 masked -> both tokens survive, accepted.
        let cfg = TfmaeConfig { patch_len: 50, r_temporal: 0.25, ..Default::default() };
        cfg.validate().unwrap();
        // A single token can never keep 2 unmasked ones.
        let cfg = TfmaeConfig { patch_len: 100, r_temporal: 0.0, ..Default::default() };
        assert!(cfg.validate().is_err());
        // The paper-scale sweep settings all pass.
        for p in [1, 5, 10] {
            let cfg = TfmaeConfig { patch_len: p, ..Default::default() };
            cfg.validate().unwrap();
        }
    }
}
