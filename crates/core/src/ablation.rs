//! Named ablation variants of Tables IV and V.
//!
//! Each variant maps a paper row label to a config transformation, so the
//! harness and the integration tests construct exactly the model the paper
//! ablated.

use crate::config::{AdversarialMode, FreqMaskKind, TemporalMaskKind, TfmaeConfig};

/// Rows of Table IV (model ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelAblation {
    /// Full TFMAE.
    Full,
    /// `w/o L_adv` — no adversarial objective (pure Eq. 14).
    WithoutAdversarial,
    /// `w/ L_radv` — swapped roles of `P` and `F` in Eq. 15.
    ReversedAdversarial,
    /// `w/o Fre` — frequency view removed.
    WithoutFrequencyView,
    /// `w/o FD` — frequency decoder removed.
    WithoutFrequencyDecoder,
    /// `w/o Tem` — temporal view removed.
    WithoutTemporalView,
    /// `w/o TE` — temporal encoder removed.
    WithoutTemporalEncoder,
    /// `w/o TD` — temporal decoder removed.
    WithoutTemporalDecoder,
}

impl ModelAblation {
    /// All Table IV rows in paper order.
    pub fn all() -> [ModelAblation; 8] {
        [
            ModelAblation::WithoutAdversarial,
            ModelAblation::ReversedAdversarial,
            ModelAblation::WithoutFrequencyView,
            ModelAblation::WithoutFrequencyDecoder,
            ModelAblation::WithoutTemporalView,
            ModelAblation::WithoutTemporalEncoder,
            ModelAblation::WithoutTemporalDecoder,
            ModelAblation::Full,
        ]
    }

    /// Paper row label.
    pub fn label(&self) -> &'static str {
        match self {
            ModelAblation::Full => "TFMAE",
            ModelAblation::WithoutAdversarial => "w/o L_adv",
            ModelAblation::ReversedAdversarial => "w/ L_radv",
            ModelAblation::WithoutFrequencyView => "w/o Fre",
            ModelAblation::WithoutFrequencyDecoder => "w/o FD",
            ModelAblation::WithoutTemporalView => "w/o Tem",
            ModelAblation::WithoutTemporalEncoder => "w/o TE",
            ModelAblation::WithoutTemporalDecoder => "w/o TD",
        }
    }

    /// Applies the ablation to a base config.
    pub fn apply(&self, mut cfg: TfmaeConfig) -> TfmaeConfig {
        match self {
            ModelAblation::Full => {}
            ModelAblation::WithoutAdversarial => cfg.adversarial = AdversarialMode::NoAdversarial,
            ModelAblation::ReversedAdversarial => cfg.adversarial = AdversarialMode::Reversed,
            ModelAblation::WithoutFrequencyView => cfg.use_frequency_branch = false,
            ModelAblation::WithoutFrequencyDecoder => cfg.frequency_decoder = false,
            ModelAblation::WithoutTemporalView => cfg.use_temporal_branch = false,
            ModelAblation::WithoutTemporalEncoder => cfg.temporal_encoder = false,
            ModelAblation::WithoutTemporalDecoder => cfg.temporal_decoder = false,
        }
        cfg
    }
}

/// Rows of Table V (masking-strategy ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskAblation {
    /// Full TFMAE.
    Full,
    /// `w/o MT` — no temporal masking.
    WithoutTemporalMask,
    /// `w/ SMT` — standard-deviation temporal masking.
    StdTemporalMask,
    /// `w/ RMT` — random temporal masking.
    RandomTemporalMask,
    /// `w/o MF` — no frequency masking.
    WithoutFrequencyMask,
    /// `w/ HMF` — high-frequency masking.
    HighFrequencyMask,
    /// `w/ RMF` — random frequency masking.
    RandomFrequencyMask,
}

impl MaskAblation {
    /// All Table V rows in paper order.
    pub fn all() -> [MaskAblation; 7] {
        [
            MaskAblation::WithoutTemporalMask,
            MaskAblation::StdTemporalMask,
            MaskAblation::RandomTemporalMask,
            MaskAblation::WithoutFrequencyMask,
            MaskAblation::HighFrequencyMask,
            MaskAblation::RandomFrequencyMask,
            MaskAblation::Full,
        ]
    }

    /// Paper row label.
    pub fn label(&self) -> &'static str {
        match self {
            MaskAblation::Full => "TFMAE",
            MaskAblation::WithoutTemporalMask => "w/o MT",
            MaskAblation::StdTemporalMask => "w/ SMT",
            MaskAblation::RandomTemporalMask => "w/ RMT",
            MaskAblation::WithoutFrequencyMask => "w/o MF",
            MaskAblation::HighFrequencyMask => "w/ HMF",
            MaskAblation::RandomFrequencyMask => "w/ RMF",
        }
    }

    /// Applies the ablation to a base config.
    pub fn apply(&self, mut cfg: TfmaeConfig) -> TfmaeConfig {
        match self {
            MaskAblation::Full => {}
            MaskAblation::WithoutTemporalMask => cfg.temporal_mask = TemporalMaskKind::None,
            MaskAblation::StdTemporalMask => cfg.temporal_mask = TemporalMaskKind::Std,
            MaskAblation::RandomTemporalMask => cfg.temporal_mask = TemporalMaskKind::Random,
            MaskAblation::WithoutFrequencyMask => cfg.freq_mask = FreqMaskKind::None,
            MaskAblation::HighFrequencyMask => cfg.freq_mask = FreqMaskKind::HighFreq,
            MaskAblation::RandomFrequencyMask => cfg.freq_mask = FreqMaskKind::Random,
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_ablation_yields_valid_config() {
        for ab in ModelAblation::all() {
            let cfg = ab.apply(TfmaeConfig::tiny());
            cfg.validate().unwrap_or_else(|e| panic!("{}: {e}", ab.label()));
        }
    }

    #[test]
    fn every_mask_ablation_yields_valid_config() {
        for ab in MaskAblation::all() {
            let cfg = ab.apply(TfmaeConfig::tiny());
            cfg.validate().unwrap_or_else(|e| panic!("{}: {e}", ab.label()));
        }
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(ModelAblation::WithoutAdversarial.label(), "w/o L_adv");
        assert_eq!(MaskAblation::HighFrequencyMask.label(), "w/ HMF");
        assert_eq!(ModelAblation::all().len(), 8);
        assert_eq!(MaskAblation::all().len(), 7);
    }

    #[test]
    fn applications_change_the_intended_switch() {
        let base = TfmaeConfig::tiny();
        let c = ModelAblation::WithoutTemporalEncoder.apply(base.clone());
        assert!(!c.temporal_encoder && c.temporal_decoder);
        let c = MaskAblation::RandomFrequencyMask.apply(base);
        assert_eq!(c.freq_mask, FreqMaskKind::Random);
        assert_eq!(c.temporal_mask, TemporalMaskKind::Cv);
    }
}
