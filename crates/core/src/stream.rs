//! Online scoring for live telemetry (the observability setting the
//! paper's introduction motivates).
//!
//! [`StreamingDetector`] wraps a fitted [`TfmaeDetector`] behind a ring
//! buffer: observations are pushed one at a time, and every `hop` pushes
//! the most recent window is scored, emitting verdicts for the `hop` newest
//! observations. Amortized cost is one window forward per `hop`
//! observations (hop = `win_len`/4 by default).
//!
//! **Degraded mode.** Live feeds drop samples, emit NaN/±Inf and glitch
//! row widths; a panic or a NaN score from the detector is the worst
//! possible response in exactly those moments. With
//! [`DegradedModeConfig::enabled`] (the default) each incoming row is
//! sanitized: non-finite channels are imputed by carrying the last good
//! value forward, up to a per-channel staleness budget; a wrong-width row
//! counts as all-bad. Every verdict carries a [`DataQuality`] flag so
//! downstream consumers can distinguish a real anomaly from a broken
//! sensor, and `Degraded` verdicts never set `is_anomaly` (don't page on a
//! dead feed). A long run of consecutive bad rows trips quarantine: the
//! poisoned buffer is discarded and the stream re-warms automatically on
//! the next clean data. [`StreamingDetector::health`] reports counters for
//! all of this.
//!
//! Since the serving engine landed (see [`crate::serving`]),
//! `StreamingDetector` is a thin wrapper around a single-stream
//! [`ServingEngine`](crate::serving::ServingEngine): the ring buffer,
//! incremental masking state, fault handling and scoring all live there,
//! and the engine with one stream is verdict-bitwise-identical to this
//! wrapper by construction.

use tfmae_data::TimeSeries;

use crate::detector::TfmaeDetector;
use crate::serving::{ServingConfig, ServingEngine};

/// Quality of the data behind one verdict (worst over its channels).
///
/// Ordered: `Clean < Imputed < Degraded`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DataQuality {
    /// All channels were finite, as received.
    Clean,
    /// At least one channel was non-finite and replaced by its last good
    /// value within the staleness budget. Scores remain meaningful;
    /// anomalies are still reported.
    Imputed,
    /// At least one channel had no usable value (staleness budget blown or
    /// never-seen channel), or the row was emitted from quarantine. The
    /// score is a placeholder and `is_anomaly` is forced `false`.
    Degraded,
}

/// Configuration for the stream's fault handling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradedModeConfig {
    /// Master switch. When `false` the stream is strict: a wrong-width row
    /// panics and non-finite values flow straight into the model.
    pub enabled: bool,
    /// How many consecutive non-finite samples a channel may impute via
    /// last-observation-carried-forward before its rows are marked
    /// [`DataQuality::Degraded`].
    pub staleness_budget: usize,
    /// Consecutive bad rows (any channel non-finite) before the stream
    /// enters quarantine and discards its buffer.
    pub quarantine_after: usize,
}

impl Default for DegradedModeConfig {
    fn default() -> Self {
        Self { enabled: true, staleness_budget: 8, quarantine_after: 16 }
    }
}

/// Stream operating mode (see [`StreamHealth`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamMode {
    /// Scoring normally.
    Normal,
    /// Too many consecutive bad rows: buffer discarded, all verdicts
    /// `Degraded` until clean data returns.
    Quarantine,
}

/// Running fault counters for one stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamHealth {
    /// Current mode.
    pub mode: StreamMode,
    /// Rows accepted with at least one imputed channel.
    pub imputed_rows: u64,
    /// Rows accepted past the staleness budget (scores untrustworthy).
    pub degraded_rows: u64,
    /// Rows swallowed while quarantined.
    pub quarantined_rows: u64,
    /// Times the stream entered quarantine.
    pub quarantine_entries: u64,
}

impl Default for StreamHealth {
    fn default() -> Self {
        Self {
            mode: StreamMode::Normal,
            imputed_rows: 0,
            degraded_rows: 0,
            quarantined_rows: 0,
            quarantine_entries: 0,
        }
    }
}

/// One scored observation from the stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamVerdict {
    /// Index of the observation in the stream (0-based from start).
    pub t: u64,
    /// Anomaly score (same scale as the offline detector).
    pub score: f32,
    /// Whether the score crossed the configured threshold (never `true`
    /// for [`DataQuality::Degraded`] observations).
    pub is_anomaly: bool,
    /// Quality of the data behind this verdict.
    pub quality: DataQuality,
}

/// Online wrapper around a fitted detector.
///
/// **Score normalization:** with the default [`ScoreKind::Combined`]
/// criterion the two score components are normalized by their means over
/// the scored span. Offline scoring normalizes over the whole series; a
/// lone hop window would normalize over itself, which makes every window
/// average the same value and blinds the detector to anomalies that span
/// a whole window. Call [`StreamingDetector::calibrate`] with the
/// validation series to **freeze** the component normalization constants —
/// online scores then live on the same scale as offline `score()` output,
/// so a `threshold_for_ratio` δ from offline validation scores transfers
/// directly. Without calibration the wrapper falls back to window-local
/// normalization (adequate for point anomalies only).
///
/// [`ScoreKind::Combined`]: crate::config::ScoreKind
pub struct StreamingDetector {
    engine: ServingEngine,
}

impl StreamingDetector {
    /// Wraps a fitted detector.
    ///
    /// * `threshold` — the δ of Eq. 17 (take it from
    ///   [`threshold_for_ratio`](tfmae_metrics::threshold_for_ratio) on
    ///   validation scores);
    /// * `hop` — observations between scoring passes (1 ≤ hop ≤ win_len).
    ///
    /// # Panics
    /// Panics if the detector has not been fitted.
    pub fn new(det: TfmaeDetector, threshold: f32, hop: usize) -> Self {
        assert!(
            det.model().is_some(),
            "StreamingDetector requires a fitted detector"
        );
        let mut engine = ServingEngine::new(det, ServingConfig::new(threshold, hop));
        engine.add_stream();
        Self { engine }
    }

    /// Replaces the degraded-mode configuration (builder style).
    pub fn with_degraded_mode(mut self, cfg: DegradedModeConfig) -> Self {
        self.engine.set_degraded_mode(cfg);
        self
    }

    /// Selects the serving weight precision (builder style): `Bf16`/`Int8`
    /// quantize the wrapped detector's 2-D weights and release the f32
    /// copies (see
    /// [`TfmaeDetector::set_precision`](crate::TfmaeDetector::set_precision));
    /// the default `F32` leaves scoring bitwise unchanged.
    ///
    /// # Panics
    /// Panics if the precision cannot be applied (detector already
    /// quantized at another precision).
    pub fn with_precision(mut self, precision: tfmae_tensor::Precision) -> Self {
        self.engine.set_precision(precision).expect("with_precision");
        self
    }

    /// The serving weight precision currently applied.
    pub fn precision(&self) -> tfmae_tensor::Precision {
        self.engine.precision()
    }

    /// Enables drift adaptation (builder style): online threshold
    /// recalibration, optional guarded background fine-tune and guard-band
    /// rollback — see [`crate::adapt`].
    pub fn with_adaptation(mut self, cfg: crate::adapt::AdaptationConfig) -> Self {
        self.engine.set_adaptation(cfg);
        self
    }

    /// Running adaptation counters (recalibrations, fine-tune updates,
    /// rollbacks, cadence backoff).
    pub fn adaptation_stats(&self) -> &crate::adapt::AdaptationStats {
        self.engine.adaptation_stats()
    }

    /// The δ currently applied to verdicts (moves under adaptation; equals
    /// the construction-time threshold otherwise).
    pub fn effective_threshold(&self) -> f32 {
        self.engine.effective_threshold()
    }

    /// The single-stream serving engine backing this wrapper.
    pub fn engine(&self) -> &ServingEngine {
        &self.engine
    }

    /// Freezes the score-normalization constants from a reference series
    /// (normally the validation split), so online scores match the scale of
    /// offline [`Detector::score`](tfmae_data::Detector::score) output. Only
    /// affects [`ScoreKind::Combined`](crate::config::ScoreKind); the other
    /// criteria are normalization-free.
    pub fn calibrate(&mut self, series: &TimeSeries) {
        self.engine.calibrate_stream(0, series);
    }

    /// Drops frozen calibration constants, reverting to window-local
    /// normalization (inverse of [`StreamingDetector::calibrate`]).
    pub fn thaw(&mut self) {
        self.engine.thaw_stream(0);
    }

    /// Whether [`StreamingDetector::calibrate`] constants are frozen in.
    pub fn is_calibrated(&self) -> bool {
        self.engine.is_calibrated(0)
    }

    /// Fault counters and current mode.
    pub fn health(&self) -> &StreamHealth {
        self.engine.health(0)
    }

    /// Execution-layer counters of the wrapped detector's executor. Every
    /// hop's scoring pass recycles its tape through the same buffer pool,
    /// so after the first scored window `pool_misses` stops growing —
    /// steady-state streaming performs no per-hop tape allocations.
    pub fn exec_stats(&self) -> tfmae_tensor::ExecStats {
        self.engine.exec_stats()
    }

    /// Convenience: hop = win_len / 4.
    pub fn with_default_hop(det: TfmaeDetector, threshold: f32) -> Self {
        let hop = (det.cfg.win_len / 4).max(1);
        Self::new(det, threshold, hop)
    }

    /// Observations pushed so far.
    pub fn len(&self) -> u64 {
        self.engine.stream_len(0)
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.engine.stream_len(0) == 0
    }

    /// Whether the warm-up window has filled.
    pub fn warmed_up(&self) -> bool {
        self.engine.warmed_up(0)
    }

    /// Pushes one observation row (`dims` values). Returns verdicts for any
    /// newly scored observations (empty during warm-up and between hops;
    /// one immediate `Degraded` verdict per row while quarantined).
    ///
    /// With degraded mode on (default) any row is accepted: non-finite
    /// values are imputed or flagged, and a wrong-width row counts as
    /// all-channels-bad.
    ///
    /// # Panics
    /// Panics if `row.len() != dims` **and** degraded mode is disabled.
    pub fn push(&mut self, row: &[f32]) -> Vec<StreamVerdict> {
        self.engine.push(0, row).into_iter().map(|v| v.verdict).collect()
    }

    /// Pushes a batch of rows, collecting all verdicts.
    pub fn push_many(&mut self, series: &TimeSeries) -> Vec<StreamVerdict> {
        assert_eq!(series.dims(), self.engine.dims());
        let mut out = Vec::new();
        for t in 0..series.len() {
            out.extend(self.push(series.row(t)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TfmaeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tfmae_data::{render, Component, Detector};
    use tfmae_metrics::threshold_for_ratio;

    fn series(len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let ch = render(
            &[Component::Sine { period: 16.0, amp: 1.0, phase: 0.0 }, Component::Noise { sigma: 0.05 }],
            len,
            &mut rng,
        );
        TimeSeries::from_channels(&[ch])
    }

    fn fitted() -> TfmaeDetector {
        let train = series(512, 1);
        let mut det = TfmaeDetector::new(TfmaeConfig { epochs: 4, ..TfmaeConfig::tiny() });
        det.fit(&train, &train);
        det
    }

    #[test]
    fn warmup_emits_nothing_then_hops() {
        let det = fitted();
        let win = det.cfg.win_len;
        let mut s = StreamingDetector::new(det, f32::MAX, 4);
        let data = series(win + 12, 2);
        let mut verdicts = Vec::new();
        for t in 0..data.len() {
            let out = s.push(data.row(t));
            if t + 1 < win {
                assert!(out.is_empty(), "no verdicts during warm-up (t={t})");
            }
            verdicts.extend(out);
        }
        assert!(s.warmed_up());
        // After warm-up, every hop of 4 pushes yields 4 verdicts.
        assert!(!verdicts.is_empty());
        assert_eq!(verdicts.len() % 4, 0);
        // Verdict indices are contiguous and increasing.
        for pair in verdicts.windows(2) {
            assert!(pair[1].t > pair[0].t);
        }
        assert!(verdicts.iter().all(|v| v.quality == DataQuality::Clean));
    }

    #[test]
    fn spike_is_flagged_online() {
        let det = fitted();
        let win = det.cfg.win_len;
        // Calibrate a threshold from validation scores.
        let val = series(128, 3);
        let delta = threshold_for_ratio(&det.score(&val), 0.02);
        let mut s = StreamingDetector::new(det, delta, 1);

        let mut data = series(win * 3, 4);
        let spike_t = win * 2;
        data.set(spike_t, 0, 12.0);
        let verdicts = s.push_many(&data);
        let hits: Vec<&StreamVerdict> =
            verdicts.iter().filter(|v| v.is_anomaly).collect();
        assert!(!hits.is_empty(), "online detector missed the spike");
        assert!(
            hits.iter().any(|v| (v.t as i64 - spike_t as i64).abs() <= 4),
            "flag not near the spike: {:?}",
            hits.iter().map(|v| v.t).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streaming_matches_offline_on_last_window_positions() {
        let det = fitted();
        let win = det.cfg.win_len;
        let data = series(win, 5);
        let offline = det.score(&data);
        let mut s = StreamingDetector::new(det, f32::MAX, win);
        let verdicts = s.push_many(&data);
        assert_eq!(verdicts.len(), win);
        for (v, &o) in verdicts.iter().zip(offline.iter()) {
            assert!((v.score - o).abs() < 1e-5, "stream {} vs offline {o}", v.score);
        }
    }

    #[test]
    fn calibrated_stream_detects_sustained_anomaly() {
        // A level shift spanning more than one full window: window-local
        // normalization absorbs it, frozen calibration norms must not.
        let det = fitted();
        let win = det.cfg.win_len;
        let val = series(256, 7);
        let delta = tfmae_metrics::threshold_for_ratio(&det.score(&val), 0.02);
        let mut s = StreamingDetector::new(det, delta, 1);
        s.calibrate(&val);

        let mut data = series(win * 4, 8);
        for t in win * 2..win * 3 + win / 2 {
            let v = data.get(t, 0);
            data.set(t, 0, v + 6.0); // sustained level shift
        }
        let verdicts = s.push_many(&data);
        let hits = verdicts
            .iter()
            .filter(|v| v.is_anomaly && (win * 2..win * 3 + win / 2).contains(&(v.t as usize)))
            .count();
        assert!(hits > 0, "calibrated stream missed a sustained level shift");
    }

    #[test]
    fn calibrate_then_thaw_restores_fallback_scoring() {
        let det = fitted();
        let win = det.cfg.win_len;
        let val = series(128, 20);
        let data = series(win, 21);

        let mut plain = StreamingDetector::new(fitted(), f32::MAX, win);
        assert!(!plain.is_calibrated());
        let baseline = plain.push_many(&data);

        let mut s = StreamingDetector::new(det, f32::MAX, win);
        s.calibrate(&val);
        assert!(s.is_calibrated());
        s.thaw();
        assert!(!s.is_calibrated());
        let thawed = s.push_many(&data);
        assert_eq!(thawed.len(), baseline.len());
        for (a, b) in thawed.iter().zip(baseline.iter()) {
            assert!((a.score - b.score).abs() < 1e-6, "thawed stream should use fallback path");
        }
    }

    #[test]
    #[should_panic(expected = "fitted")]
    fn unfitted_detector_is_rejected() {
        let det = TfmaeDetector::new(TfmaeConfig::tiny());
        StreamingDetector::new(det, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn strict_mode_rejects_wrong_row_width() {
        let det = fitted();
        let mut s = StreamingDetector::new(det, 0.0, 1)
            .with_degraded_mode(DegradedModeConfig { enabled: false, ..Default::default() });
        s.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn wrong_row_width_is_tolerated_in_degraded_mode() {
        let det = fitted();
        let win = det.cfg.win_len;
        let mut s = StreamingDetector::new(det, f32::MAX, 1);
        let data = series(win, 9);
        for t in 0..win {
            s.push(data.row(t));
        }
        let out = s.push(&[1.0, 2.0, 3.0]); // wrong width: imputed, not fatal
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].quality, DataQuality::Imputed);
        assert!(out[0].score.is_finite());
        assert_eq!(s.health().imputed_rows, 1);
    }

    #[test]
    fn nan_rows_are_imputed_and_flagged() {
        let det = fitted();
        let win = det.cfg.win_len;
        let mut s = StreamingDetector::new(det, f32::MAX, 1);
        let data = series(win * 2, 10);
        let mut verdicts = Vec::new();
        for t in 0..data.len() {
            // ~10% NaN storm in the second window.
            let row = if t >= win && t % 10 == 0 { vec![f32::NAN] } else { data.row(t).to_vec() };
            verdicts.extend(s.push(&row));
        }
        assert!(!verdicts.is_empty());
        assert!(verdicts.iter().all(|v| v.score.is_finite()), "no NaN may escape");
        let imputed: Vec<&StreamVerdict> =
            verdicts.iter().filter(|v| v.quality == DataQuality::Imputed).collect();
        assert!(!imputed.is_empty(), "NaN rows must be flagged as imputed");
        assert!(imputed.iter().all(|v| v.t >= win as u64 && v.t % 10 == 0));
        // Clean rows between the faults stay Clean.
        assert!(verdicts
            .iter()
            .any(|v| v.t > win as u64 && v.quality == DataQuality::Clean));
        assert_eq!(s.health().mode, StreamMode::Normal);
        assert!(s.health().imputed_rows > 0);
    }

    #[test]
    fn staleness_budget_escalates_to_degraded() {
        let det = fitted();
        let win = det.cfg.win_len;
        let budget = 3;
        let mut s = StreamingDetector::new(det, f32::MAX, 1).with_degraded_mode(
            DegradedModeConfig { staleness_budget: budget, quarantine_after: 1000, ..Default::default() },
        );
        let data = series(win, 11);
        for t in 0..win {
            s.push(data.row(t));
        }
        let mut qualities = Vec::new();
        for _ in 0..budget + 2 {
            let out = s.push(&[f32::NAN]);
            qualities.push(out[0].quality);
        }
        assert!(qualities[..budget].iter().all(|&q| q == DataQuality::Imputed));
        assert!(qualities[budget..].iter().all(|&q| q == DataQuality::Degraded));
    }

    #[test]
    fn quarantine_trips_and_recovers() {
        let det = fitted();
        let win = det.cfg.win_len;
        let quarantine_after = 6;
        let mut s = StreamingDetector::new(det, f32::MAX, 1).with_degraded_mode(
            DegradedModeConfig { staleness_budget: 2, quarantine_after, ..Default::default() },
        );
        let data = series(win * 3, 12);
        for t in 0..win {
            s.push(data.row(t));
        }
        // A dead feed: all-NaN until quarantine trips.
        for i in 0..quarantine_after + 4 {
            let out = s.push(&[f32::NAN]);
            assert_eq!(out.len(), 1);
            if i + 1 >= quarantine_after {
                assert_eq!(out[0].quality, DataQuality::Degraded);
            }
            assert!(!out[0].is_anomaly, "a dead feed must never page");
            assert!(out[0].score.is_finite());
        }
        assert_eq!(s.health().mode, StreamMode::Quarantine);
        assert_eq!(s.health().quarantine_entries, 1);
        assert!(s.health().quarantined_rows > 0);
        assert!(!s.warmed_up(), "quarantine discards the buffer");

        // Clean data returns: stream leaves quarantine and re-warms.
        let mut recovered = Vec::new();
        for t in win..win * 2 + 4 {
            recovered.extend(s.push(data.row(t)));
        }
        assert_eq!(s.health().mode, StreamMode::Normal);
        assert!(!recovered.is_empty(), "stream must score again after recovery");
        assert!(recovered.iter().all(|v| v.quality == DataQuality::Clean));
        assert!(recovered.iter().all(|v| v.score.is_finite()));
    }
}
