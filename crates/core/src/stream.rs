//! Online scoring for live telemetry (the observability setting the
//! paper's introduction motivates).
//!
//! [`StreamingDetector`] wraps a fitted [`TfmaeDetector`] behind a ring
//! buffer: observations are pushed one at a time, and every `hop` pushes
//! the most recent window is scored, emitting verdicts for the `hop` newest
//! observations. Amortized cost is one window forward per `hop`
//! observations (hop = `win_len`/4 by default).

use std::collections::VecDeque;

use tfmae_data::{Detector, TimeSeries};

use crate::detector::TfmaeDetector;

/// One scored observation from the stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamVerdict {
    /// Index of the observation in the stream (0-based from start).
    pub t: u64,
    /// Anomaly score (same scale as the offline detector).
    pub score: f32,
    /// Whether the score crossed the configured threshold.
    pub is_anomaly: bool,
}

/// Online wrapper around a fitted detector.
///
/// **Score normalization:** with the default [`ScoreKind::Combined`]
/// criterion the two score components are normalized by their means over
/// the scored span. Offline scoring normalizes over the whole series; a
/// lone hop window would normalize over itself, which makes every window
/// average the same value and blinds the detector to anomalies that span
/// a whole window. Call [`StreamingDetector::calibrate`] with the
/// validation series to **freeze** the component normalization constants —
/// online scores then live on the same scale as offline `score()` output,
/// so a `threshold_for_ratio` δ from offline validation scores transfers
/// directly. Without calibration the wrapper falls back to window-local
/// normalization (adequate for point anomalies only).
///
/// [`ScoreKind::Combined`]: crate::config::ScoreKind
pub struct StreamingDetector {
    det: TfmaeDetector,
    threshold: f32,
    hop: usize,
    dims: usize,
    win_len: usize,
    buffer: VecDeque<Vec<f32>>,
    pushed: u64,
    since_score: usize,
    frozen_norms: Option<(f32, f32)>,
}

impl StreamingDetector {
    /// Wraps a fitted detector.
    ///
    /// * `threshold` — the δ of Eq. 17 (take it from
    ///   [`threshold_for_ratio`](tfmae_metrics::threshold_for_ratio) on
    ///   validation scores);
    /// * `hop` — observations between scoring passes (1 ≤ hop ≤ win_len).
    ///
    /// # Panics
    /// Panics if the detector has not been fitted.
    pub fn new(det: TfmaeDetector, threshold: f32, hop: usize) -> Self {
        let model = det.model().expect("StreamingDetector requires a fitted detector");
        let win_len = det.cfg.win_len;
        let dims = model.dims();
        assert!((1..=win_len).contains(&hop), "hop must be in 1..=win_len");
        Self {
            det,
            threshold,
            hop,
            dims,
            win_len,
            buffer: VecDeque::with_capacity(win_len + 1),
            pushed: 0,
            since_score: 0,
            frozen_norms: None,
        }
    }

    /// Freezes the score-normalization constants from a reference series
    /// (normally the validation split), so online scores match the scale of
    /// offline [`Detector::score`] output. Only affects
    /// [`ScoreKind::Combined`](crate::config::ScoreKind); the other
    /// criteria are normalization-free.
    pub fn calibrate(&mut self, series: &TimeSeries) {
        let (kl, dual) = self.det.score_components(series);
        let ma = kl.iter().sum::<f32>() / kl.len().max(1) as f32;
        let mb = dual.iter().sum::<f32>() / dual.len().max(1) as f32;
        self.frozen_norms = Some((ma, mb));
    }

    /// Convenience: hop = win_len / 4.
    pub fn with_default_hop(det: TfmaeDetector, threshold: f32) -> Self {
        let hop = (det.cfg.win_len / 4).max(1);
        Self::new(det, threshold, hop)
    }

    /// Observations pushed so far.
    pub fn len(&self) -> u64 {
        self.pushed
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Whether the warm-up window has filled.
    pub fn warmed_up(&self) -> bool {
        self.buffer.len() >= self.win_len
    }

    /// Pushes one observation row (`dims` values). Returns verdicts for any
    /// newly scored observations (empty during warm-up and between hops).
    ///
    /// # Panics
    /// Panics if `row.len() != dims`.
    pub fn push(&mut self, row: &[f32]) -> Vec<StreamVerdict> {
        assert_eq!(row.len(), self.dims, "row width mismatch");
        self.buffer.push_back(row.to_vec());
        if self.buffer.len() > self.win_len {
            self.buffer.pop_front();
        }
        self.pushed += 1;
        self.since_score += 1;

        if !self.warmed_up() || self.since_score < self.hop {
            return Vec::new();
        }
        self.since_score = 0;

        // Score the current window and report its newest `hop` positions.
        let mut flat = Vec::with_capacity(self.win_len * self.dims);
        for r in &self.buffer {
            flat.extend_from_slice(r);
        }
        let window = TimeSeries::new(flat, self.win_len, self.dims);
        let scores = match (self.frozen_norms, self.det.cfg.score) {
            (Some((ma, mb)), crate::config::ScoreKind::Combined) => {
                let (kl, dual) = self.det.score_components(&window);
                kl.iter()
                    .zip(dual.iter())
                    .map(|(x, y)| x / (ma + 1e-12) + y / (mb + 1e-12))
                    .collect()
            }
            _ => self.det.score(&window),
        };
        let newest = self.hop.min(self.win_len);
        let base_t = self.pushed - newest as u64;
        (0..newest)
            .map(|i| {
                let score = scores[self.win_len - newest + i];
                StreamVerdict { t: base_t + i as u64, score, is_anomaly: score >= self.threshold }
            })
            .collect()
    }

    /// Pushes a batch of rows, collecting all verdicts.
    pub fn push_many(&mut self, series: &TimeSeries) -> Vec<StreamVerdict> {
        assert_eq!(series.dims(), self.dims);
        let mut out = Vec::new();
        for t in 0..series.len() {
            out.extend(self.push(series.row(t)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TfmaeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tfmae_data::{render, Component};
    use tfmae_metrics::threshold_for_ratio;

    fn series(len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let ch = render(
            &[Component::Sine { period: 16.0, amp: 1.0, phase: 0.0 }, Component::Noise { sigma: 0.05 }],
            len,
            &mut rng,
        );
        TimeSeries::from_channels(&[ch])
    }

    fn fitted() -> TfmaeDetector {
        let train = series(512, 1);
        let mut det = TfmaeDetector::new(TfmaeConfig { epochs: 4, ..TfmaeConfig::tiny() });
        det.fit(&train, &train);
        det
    }

    #[test]
    fn warmup_emits_nothing_then_hops() {
        let det = fitted();
        let win = det.cfg.win_len;
        let mut s = StreamingDetector::new(det, f32::MAX, 4);
        let data = series(win + 12, 2);
        let mut verdicts = Vec::new();
        for t in 0..data.len() {
            let out = s.push(data.row(t));
            if t + 1 < win {
                assert!(out.is_empty(), "no verdicts during warm-up (t={t})");
            }
            verdicts.extend(out);
        }
        assert!(s.warmed_up());
        // After warm-up, every hop of 4 pushes yields 4 verdicts.
        assert!(!verdicts.is_empty());
        assert_eq!(verdicts.len() % 4, 0);
        // Verdict indices are contiguous and increasing.
        for pair in verdicts.windows(2) {
            assert!(pair[1].t > pair[0].t);
        }
    }

    #[test]
    fn spike_is_flagged_online() {
        let det = fitted();
        let win = det.cfg.win_len;
        // Calibrate a threshold from validation scores.
        let val = series(128, 3);
        let delta = threshold_for_ratio(&det.score(&val), 0.02);
        let mut s = StreamingDetector::new(det, delta, 1);

        let mut data = series(win * 3, 4);
        let spike_t = win * 2;
        data.set(spike_t, 0, 12.0);
        let verdicts = s.push_many(&data);
        let hits: Vec<&StreamVerdict> =
            verdicts.iter().filter(|v| v.is_anomaly).collect();
        assert!(!hits.is_empty(), "online detector missed the spike");
        assert!(
            hits.iter().any(|v| (v.t as i64 - spike_t as i64).abs() <= 4),
            "flag not near the spike: {:?}",
            hits.iter().map(|v| v.t).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streaming_matches_offline_on_last_window_positions() {
        let det = fitted();
        let win = det.cfg.win_len;
        let data = series(win, 5);
        let offline = det.score(&data);
        let mut s = StreamingDetector::new(det, f32::MAX, win);
        let verdicts = s.push_many(&data);
        assert_eq!(verdicts.len(), win);
        for (v, &o) in verdicts.iter().zip(offline.iter()) {
            assert!((v.score - o).abs() < 1e-5, "stream {} vs offline {o}", v.score);
        }
    }

    #[test]
    fn calibrated_stream_detects_sustained_anomaly() {
        // A level shift spanning more than one full window: window-local
        // normalization absorbs it, frozen calibration norms must not.
        let det = fitted();
        let win = det.cfg.win_len;
        let val = series(256, 7);
        let delta = tfmae_metrics::threshold_for_ratio(&det.score(&val), 0.02);
        let mut s = StreamingDetector::new(det, delta, 1);
        s.calibrate(&val);

        let mut data = series(win * 4, 8);
        for t in win * 2..win * 3 + win / 2 {
            let v = data.get(t, 0);
            data.set(t, 0, v + 6.0); // sustained level shift
        }
        let verdicts = s.push_many(&data);
        let hits = verdicts
            .iter()
            .filter(|v| v.is_anomaly && (win * 2..win * 3 + win / 2).contains(&(v.t as usize)))
            .count();
        assert!(hits > 0, "calibrated stream missed a sustained level shift");
    }

    #[test]
    #[should_panic(expected = "fitted")]
    fn unfitted_detector_is_rejected() {
        let det = TfmaeDetector::new(TfmaeConfig::tiny());
        StreamingDetector::new(det, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_row_width_panics() {
        let det = fitted();
        let mut s = StreamingDetector::new(det, 0.0, 1);
        s.push(&[1.0, 2.0, 3.0]);
    }
}
