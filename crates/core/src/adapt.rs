//! Drift adaptation for the serving engine: online threshold
//! recalibration, guarded background fine-tuning and quarantine-aware
//! rollback.
//!
//! The paper calibrates δ once, as a validation-set quantile (Eq. 17), and
//! serves with it forever. Under distribution drift — a level shift, a
//! variance blow-up, a slowly ramping trend — the frozen δ either floods
//! the operator with false positives or goes blind. This module closes the
//! loop with three mechanisms, each defaulting **off** so that serving with
//! adaptation disabled stays bitwise identical to the frozen engine:
//!
//! 1. **Adaptive threshold** — a rolling quantile over recent *clean*
//!    serving scores (two-generation log-bucket histograms, the same shape
//!    as the obs [`Histogram`]) re-derives δ at the Eq. 17 ratio on a
//!    configurable cadence, with hysteresis and a per-step clamp so δ moves
//!    smoothly. Degraded and quarantined rows never feed the window, and a
//!    stream that exits quarantine sits out a holdoff before its scores
//!    re-enter calibration.
//! 2. **Guarded background fine-tune** — a reservoir of recent fully-clean
//!    windows periodically drives a few optimizer steps under the PR 1
//!    [`TrainGuard`](crate::robust::TrainGuard) (divergence rollback + LR
//!    backoff), after snapshotting the model weights.
//! 3. **Quarantine-aware rollback** — every update opens a probation
//!    window; if the calibration-anchored drift statistic or the degraded
//!    row rate worsens past a guard band, the last-good snapshot is
//!    restored and the adaptation cadence backs off exponentially (capped).
//!    A probation served cleanly halves the backoff again.
//!
//! See DESIGN.md §15 for the full state machine and failure-mode analysis.

use serde::{Deserialize, Serialize};
use tfmae_obs::{HistSnapshot, Histogram};
use tfmae_tensor::{ParamSnapshot, ParamStore};

use crate::robust::{RobustnessConfig, TrainReport};
use crate::stream::DataQuality;

/// Background fine-tune policy (one component of [`AdaptationConfig`]).
#[derive(Clone, Debug)]
pub struct FinetuneConfig {
    /// Master switch; `false` recalibrates the threshold only.
    pub enabled: bool,
    /// Capacity of the clean-window reservoir (newest windows win).
    pub reservoir: usize,
    /// Clean calibration scores between fine-tune updates (multiplied by
    /// the current rollback backoff).
    pub interval: usize,
    /// Optimizer steps per update.
    pub steps: usize,
    /// Windows per step.
    pub batch: usize,
    /// Learning rate; `0.0` uses
    /// [`TfmaeConfig::finetune_lr`](crate::TfmaeConfig::finetune_lr).
    pub lr: f32,
    /// Guardrails for the update ([`TrainGuard`](crate::robust::TrainGuard)
    /// semantics: non-finite/diverged steps roll back and back off the LR).
    pub robust: RobustnessConfig,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            reservoir: 64,
            interval: 512,
            steps: 4,
            batch: 8,
            lr: 0.0,
            robust: RobustnessConfig::default(),
        }
    }
}

/// Post-update guard band: how much worse serving may get before the
/// engine rolls the model back to the last-good snapshot.
#[derive(Clone, Debug)]
pub struct GuardBand {
    /// Rollback when the calibration-anchored drift ratio (rolling score
    /// median over the anchor median) leaves `[1/max_drift, max_drift]`
    /// during probation. Two-sided on purpose: a harmful update can blow
    /// scores up (false-positive flood) *or* collapse them (the model goes
    /// blind); both are regressions against the pre-update anchor.
    pub max_drift: f64,
    /// Rollback when the fraction of degraded/quarantined rows observed
    /// during probation exceeds this.
    pub max_degraded_rate: f64,
    /// Clean calibration scores that must be observed after an update
    /// before it is considered proven.
    pub probation: usize,
    /// Cap on the exponential cadence backoff multiplier.
    pub max_backoff: u32,
}

impl Default for GuardBand {
    fn default() -> Self {
        Self { max_drift: 4.0, max_degraded_rate: 0.5, probation: 64, max_backoff: 16 }
    }
}

/// Drift-adaptation policy for [`ServingEngine`](crate::ServingEngine).
///
/// Disabled by default: with `enabled == false` the engine's verdicts are
/// bitwise identical to the frozen-threshold engine (test-asserted).
#[derive(Clone, Debug)]
pub struct AdaptationConfig {
    /// Master switch.
    pub enabled: bool,
    /// The Eq. 17 anomaly ratio `r`: δ is recalibrated to the `(1 − r)`
    /// rolling-score quantile.
    pub target_ratio: f32,
    /// Clean calibration scores between recalibration attempts (multiplied
    /// by the current rollback backoff).
    pub recalibrate_every: usize,
    /// Minimum clean scores in the rolling window before δ may move (also
    /// when the drift anchor is first frozen).
    pub min_samples: usize,
    /// Rolling score-window size; kept as two half-window histogram
    /// generations, so quantiles always reflect the last `window/2 ..
    /// window` clean scores.
    pub window: usize,
    /// Minimum relative δ change that is actually applied; smaller moves
    /// are skipped (calibration chatter suppression).
    pub hysteresis: f32,
    /// Maximum relative δ change per recalibration (clamp).
    pub max_step: f32,
    /// Scored windows a stream sits out after leaving quarantine before
    /// its scores re-enter the calibration window and reservoir.
    pub holdoff: usize,
    /// Background fine-tune policy.
    pub finetune: FinetuneConfig,
    /// Post-update rollback guard band.
    pub guard: GuardBand,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            target_ratio: 0.02,
            recalibrate_every: 256,
            min_samples: 128,
            window: 1024,
            hysteresis: 0.05,
            max_step: 0.5,
            holdoff: 4,
            finetune: FinetuneConfig::default(),
            guard: GuardBand::default(),
        }
    }
}

impl AdaptationConfig {
    /// An enabled configuration with the default knobs.
    pub fn enabled() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// Running counters of the adaptation loop (see
/// [`ServingEngine::adaptation_stats`](crate::ServingEngine::adaptation_stats)).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdaptationStats {
    /// The δ currently applied to verdicts.
    pub threshold: f32,
    /// Recalibrations that actually moved δ.
    pub recalibrations: u64,
    /// Background fine-tune updates attempted.
    pub finetune_updates: u64,
    /// Optimizer steps applied across all updates.
    pub finetune_steps: u64,
    /// Guard-band rollbacks to the last-good snapshot.
    pub rollbacks: u64,
    /// Current cadence backoff multiplier (1 = no backoff).
    pub cadence_mult: u32,
    /// Clean scores admitted into the calibration window so far.
    pub clean_scores: u64,
    /// CRC32 of the last-good parameter snapshot (0 before any update).
    pub last_good_hash: u32,
}

/// The persistable slice of adaptive state, written as an optional
/// CRC-covered section of the v2 checkpoint envelope (see
/// [`TfmaeDetector::save_with_adaptive`](crate::TfmaeDetector::save_with_adaptive)).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSnapshot {
    /// The current δ.
    pub threshold: f32,
    /// Applied recalibrations so far.
    pub recalibrations: u64,
    /// Cadence backoff multiplier at save time.
    pub cadence_mult: u32,
    /// CRC32 of the last-good parameter snapshot (0 if none).
    pub last_good_hash: u32,
}

/// A rolling quantile window over anomaly scores, built from two
/// half-window generations of the obs log-bucket [`Histogram`] shape:
/// recording is O(1), and quantiles are computed on the merged snapshot of
/// both generations, so they always cover the last `window/2 .. window`
/// samples with ≤ 12.5% relative bucket error.
#[derive(Debug)]
pub struct ScoreWindow {
    cur: Histogram,
    prev: Option<HistSnapshot>,
    half: u64,
}

impl ScoreWindow {
    /// A window covering (at most) the last `window` samples.
    pub fn new(window: usize) -> Self {
        Self { cur: Histogram::new(), prev: None, half: (window as u64 / 2).max(1) }
    }

    /// Records one score (micro-unit fixed point, like
    /// [`Histogram::record_micro`]); rotates generations at half-window.
    pub fn record(&mut self, score: f64) {
        self.cur.record_micro(score);
        if self.cur.count() >= self.half {
            self.prev = Some(self.cur.snapshot());
            self.cur = Histogram::new();
        }
    }

    /// Samples currently covered (both generations).
    pub fn count(&self) -> u64 {
        self.cur.count() + self.prev.as_ref().map_or(0, |p| p.count)
    }

    /// Nearest-rank quantile in micro-units over the merged generations
    /// (0 when empty).
    pub fn quantile_micro(&self, q: f64) -> u64 {
        self.merged().quantile(q)
    }

    /// Drops all samples (quarantining the window after a rollback).
    pub fn reset(&mut self) {
        self.cur = Histogram::new();
        self.prev = None;
    }

    fn merged(&self) -> HistSnapshot {
        let a = self.cur.snapshot();
        let Some(b) = self.prev.as_ref().filter(|p| p.count > 0) else { return a };
        if a.count == 0 {
            return b.clone();
        }
        let mut buckets = Vec::with_capacity(a.buckets.len() + b.buckets.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.buckets.len() || j < b.buckets.len() {
            let na = a.buckets.get(i);
            let nb = b.buckets.get(j);
            match (na, nb) {
                (Some(&(ia, ca)), Some(&(ib, cb))) if ia == ib => {
                    buckets.push((ia, ca + cb));
                    i += 1;
                    j += 1;
                }
                (Some(&(ia, ca)), Some(&(ib, _))) if ia < ib => {
                    buckets.push((ia, ca));
                    i += 1;
                }
                (Some(_), Some(&(ib, cb))) => {
                    buckets.push((ib, cb));
                    j += 1;
                }
                (Some(&(ia, ca)), None) => {
                    buckets.push((ia, ca));
                    i += 1;
                }
                (None, Some(&(ib, cb))) => {
                    buckets.push((ib, cb));
                    j += 1;
                }
                (None, None) => break,
            }
        }
        HistSnapshot {
            count: a.count + b.count,
            sum: a.sum.wrapping_add(b.sum),
            min: a.min.min(b.min),
            max: a.max.max(b.max),
            buckets,
        }
    }
}

/// CRC32 (IEEE) over the bit patterns of every parameter scalar — the
/// "last-good snapshot hash" persisted in [`AdaptiveSnapshot`].
pub fn param_hash(ps: &ParamStore) -> u32 {
    let mut bytes = Vec::with_capacity(ps.num_scalars() * 4);
    for p in ps.params() {
        for &v in &p.data {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    crate::checkpoint::crc32_ieee(&bytes)
}

struct Probation {
    remaining: usize,
    rows: u64,
    degraded: u64,
}

/// Engine-side adaptation state machine. One per [`ServingEngine`]
/// (constructed even when disabled, so the drift gauge can anchor itself);
/// all mutation happens on the flush path.
///
/// [`ServingEngine`]: crate::ServingEngine
pub(crate) struct AdaptiveRuntime {
    cfg: AdaptationConfig,
    window: ScoreWindow,
    anchor_micro: Option<u64>,
    clean_since_recal: usize,
    clean_since_tune: usize,
    reservoir: Vec<Vec<f32>>,
    next_slot: usize,
    /// Pre-update weights (the state a guard-band rollback restores); the
    /// matching hash lives in `stats.last_good_hash`.
    last_good: Option<ParamSnapshot>,
    probation: Option<Probation>,
    stats: AdaptationStats,
}

impl AdaptiveRuntime {
    pub(crate) fn new(cfg: AdaptationConfig, threshold: f32) -> Self {
        let window = ScoreWindow::new(cfg.window);
        Self {
            cfg,
            window,
            anchor_micro: None,
            clean_since_recal: 0,
            clean_since_tune: 0,
            reservoir: Vec::new(),
            next_slot: 0,
            last_good: None,
            probation: None,
            stats: AdaptationStats { threshold, cadence_mult: 1, ..AdaptationStats::default() },
        }
    }

    pub(crate) fn threshold(&self) -> f32 {
        self.stats.threshold
    }

    pub(crate) fn stats(&self) -> &AdaptationStats {
        &self.stats
    }

    #[cfg(test)]
    pub(crate) fn in_probation(&self) -> bool {
        self.probation.is_some()
    }

    /// Feeds one verdict. `calib` is the staging-time eligibility of the
    /// verdict's window (false during post-quarantine holdoff); `track`
    /// additionally gates window recording (adaptation or obs active).
    pub(crate) fn observe(&mut self, score: f32, quality: DataQuality, calib: bool, track: bool) {
        if let Some(p) = self.probation.as_mut() {
            p.rows += 1;
            if quality == DataQuality::Degraded {
                p.degraded += 1;
            }
        }
        if !(track && calib && quality == DataQuality::Clean) {
            return;
        }
        self.window.record(f64::from(score));
        self.stats.clean_scores += 1;
        if self.anchor_micro.is_none() && self.window.count() >= self.cfg.min_samples as u64 {
            self.anchor_micro = Some(self.window.quantile_micro(0.5));
        }
        if self.cfg.enabled {
            self.clean_since_recal += 1;
            self.clean_since_tune += 1;
            if let Some(p) = self.probation.as_mut() {
                p.remaining = p.remaining.saturating_sub(1);
            }
        }
    }

    /// Counts a row that never reached the scoring path (quarantine) toward
    /// the probation degraded-rate statistic.
    pub(crate) fn observe_unscored_degraded(&mut self) {
        if let Some(p) = self.probation.as_mut() {
            p.rows += 1;
            p.degraded += 1;
        }
    }

    /// Offers a fully-clean window to the fine-tune reservoir (ring
    /// overwrite once at capacity).
    pub(crate) fn offer_window(&mut self, values: Vec<f32>) {
        let cap = self.cfg.finetune.reservoir.max(1);
        if self.reservoir.len() < cap {
            self.reservoir.push(values);
        } else {
            self.reservoir[self.next_slot % cap] = values;
        }
        self.next_slot = (self.next_slot + 1) % cap;
    }

    pub(crate) fn reservoir_len(&self) -> usize {
        self.reservoir.len()
    }

    pub(crate) fn drain_reservoir(&mut self) -> Vec<Vec<f32>> {
        self.next_slot = 0;
        std::mem::take(&mut self.reservoir)
    }

    fn cadence(&self, base: usize) -> usize {
        base.saturating_mul(self.stats.cadence_mult.max(1) as usize)
    }

    pub(crate) fn recalibration_due(&self) -> bool {
        self.cfg.enabled
            && self.clean_since_recal >= self.cadence(self.cfg.recalibrate_every)
            && self.window.count() >= self.cfg.min_samples as u64
    }

    /// Re-derives δ from the rolling window at the Eq. 17 ratio, applying
    /// hysteresis and the per-step clamp, and re-freezes the drift anchor.
    /// Returns whether δ actually moved.
    pub(crate) fn recalibrate(&mut self) -> bool {
        self.clean_since_recal = 0;
        self.anchor_micro = Some(self.window.quantile_micro(0.5));
        let q = 1.0 - f64::from(self.cfg.target_ratio.clamp(0.0, 1.0));
        let cand = self.window.quantile_micro(q) as f32 / 1e6;
        if !cand.is_finite() || cand <= 0.0 {
            return false;
        }
        let cur = self.stats.threshold;
        if (cand - cur).abs() / cur.max(1e-12) < self.cfg.hysteresis {
            return false;
        }
        let step = self.cfg.max_step.max(0.0);
        self.stats.threshold = cand.clamp(cur * (1.0 - step).max(0.0), cur * (1.0 + step));
        self.stats.recalibrations += 1;
        true
    }

    pub(crate) fn finetune_due(&self) -> bool {
        self.cfg.enabled
            && self.cfg.finetune.enabled
            && self.probation.is_none()
            && self.clean_since_tune >= self.cadence(self.cfg.finetune.interval)
            && self.reservoir.len() >= self.cfg.finetune.batch.max(1)
    }

    /// Books an attempted update: stores the pre-update snapshot as
    /// last-good and opens the probation window.
    pub(crate) fn note_finetune(&mut self, snap: ParamSnapshot, hash: u32, report: &TrainReport) {
        self.clean_since_tune = 0;
        self.stats.finetune_updates += 1;
        self.stats.finetune_steps += report.steps;
        self.stats.last_good_hash = hash;
        self.last_good = Some(snap);
        self.probation =
            Some(Probation { remaining: self.cfg.guard.probation.max(1), rows: 0, degraded: 0 });
    }

    /// Calibration-anchored drift ratio: rolling score median over the
    /// anchor median (1.0 until the anchor is frozen).
    pub(crate) fn drift_ratio(&self) -> f64 {
        match self.anchor_micro {
            Some(a) if a > 0 && self.window.count() > 0 => {
                self.window.quantile_micro(0.5) as f64 / a as f64
            }
            _ => 1.0,
        }
    }

    /// The drift gauge value in milli-units (1000 = at calibration).
    pub(crate) fn drift_millis(&self) -> i64 {
        (self.drift_ratio() * 1e3).clamp(0.0, 1e12) as i64
    }

    /// Evaluates the probation guard band. Returns the snapshot to restore
    /// when the update must be rolled back (the caller restores it into the
    /// model); a cleanly served probation halves the cadence backoff.
    pub(crate) fn probation_action(&mut self) -> Option<ParamSnapshot> {
        let p = self.probation.as_ref()?;
        let ratio = self.drift_ratio();
        let band = self.cfg.guard.max_drift.max(1.0);
        let drift_bad = ratio > band || ratio < 1.0 / band;
        let degraded_bad =
            p.rows >= 8 && (p.degraded as f64 / p.rows as f64) > self.cfg.guard.max_degraded_rate;
        if drift_bad || degraded_bad {
            self.probation = None;
            self.stats.rollbacks += 1;
            self.stats.cadence_mult = self
                .stats
                .cadence_mult
                .max(1)
                .saturating_mul(2)
                .min(self.cfg.guard.max_backoff.max(1));
            self.clean_since_tune = 0;
            self.clean_since_recal = 0;
            // The window is polluted with post-update scores; recalibrating
            // from it would chase the damage.
            self.window.reset();
            return self.last_good.take();
        }
        if p.remaining == 0 {
            self.probation = None;
            self.stats.cadence_mult = (self.stats.cadence_mult / 2).max(1);
        }
        None
    }

    pub(crate) fn snapshot(&self) -> AdaptiveSnapshot {
        AdaptiveSnapshot {
            threshold: self.stats.threshold,
            recalibrations: self.stats.recalibrations,
            cadence_mult: self.stats.cadence_mult,
            last_good_hash: self.stats.last_good_hash,
        }
    }

    pub(crate) fn resume(&mut self, snap: &AdaptiveSnapshot) {
        if snap.threshold.is_finite() && snap.threshold > 0.0 {
            self.stats.threshold = snap.threshold;
        }
        self.stats.recalibrations = snap.recalibrations;
        self.stats.cadence_mult = snap.cadence_mult.max(1);
        self.stats.last_good_hash = snap.last_good_hash;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_window_tracks_recent_distribution() {
        let mut w = ScoreWindow::new(64);
        for _ in 0..200 {
            w.record(1.0);
        }
        let p50_before = w.quantile_micro(0.5);
        assert!((900_000..=1_100_000).contains(&p50_before), "p50 was {p50_before}");
        // Shift the stream: after >window samples the old mass is gone.
        for _ in 0..200 {
            w.record(8.0);
        }
        let p50_after = w.quantile_micro(0.5);
        assert!(p50_after >= 7_000_000, "p50 after shift was {p50_after}");
        assert!(w.count() <= 64, "window retains at most `window` samples");
    }

    #[test]
    fn score_window_merges_generations() {
        let mut w = ScoreWindow::new(100);
        for i in 0..60 {
            w.record(if i < 30 { 1.0 } else { 2.0 });
        }
        // Both generations contribute: the merged count spans the rotation.
        assert!(w.count() > 30);
        let p99 = w.quantile_micro(0.99);
        assert!(p99 >= 1_700_000, "p99 was {p99}");
    }

    #[test]
    fn recalibration_respects_hysteresis_and_clamp() {
        let mut cfg = AdaptationConfig::enabled();
        cfg.min_samples = 16;
        cfg.recalibrate_every = 16;
        cfg.target_ratio = 0.5; // recalibrate to the median, easy to reason about
        cfg.hysteresis = 0.05;
        cfg.max_step = 0.5;
        let mut rt = AdaptiveRuntime::new(cfg, 1.0);
        // Scores at the threshold scale: |Δ| below hysteresis → no move.
        for _ in 0..32 {
            rt.observe(1.01, DataQuality::Clean, true, true);
        }
        assert!(rt.recalibration_due());
        assert!(!rt.recalibrate(), "sub-hysteresis move must be skipped");
        assert_eq!(rt.threshold(), 1.0);
        // A big shift is clamped to max_step per recalibration.
        for _ in 0..64 {
            rt.observe(10.0, DataQuality::Clean, true, true);
        }
        assert!(rt.recalibrate());
        assert!((rt.threshold() - 1.5).abs() < 1e-6, "clamped to 1 + max_step");
        assert_eq!(rt.stats().recalibrations, 1);
    }

    #[test]
    fn degraded_scores_never_enter_the_window() {
        let cfg = AdaptationConfig::enabled();
        let mut rt = AdaptiveRuntime::new(cfg, 1.0);
        for _ in 0..50 {
            rt.observe(99.0, DataQuality::Degraded, true, true);
            rt.observe(99.0, DataQuality::Clean, false, true); // holdoff
        }
        assert_eq!(rt.window.count(), 0);
        assert_eq!(rt.stats().clean_scores, 0);
    }

    #[test]
    fn probation_rolls_back_on_drift_and_backs_off() {
        let mut cfg = AdaptationConfig::enabled();
        cfg.min_samples = 8;
        cfg.guard.max_drift = 2.0;
        cfg.guard.probation = 16;
        cfg.window = 32;
        let mut rt = AdaptiveRuntime::new(cfg, 1.0);
        for _ in 0..16 {
            rt.observe(1.0, DataQuality::Clean, true, true);
        }
        assert!(rt.anchor_micro.is_some());
        let ps = ParamStore::new();
        rt.note_finetune(ps.snapshot(), 0xDEAD, &TrainReport::default());
        assert!(rt.in_probation());
        // Post-update scores explode: drift ratio trips the guard band.
        for _ in 0..40 {
            rt.observe(10.0, DataQuality::Clean, true, true);
        }
        let restored = rt.probation_action();
        assert!(restored.is_some(), "guard band must hand back the snapshot");
        assert_eq!(rt.stats().rollbacks, 1);
        assert_eq!(rt.stats().cadence_mult, 2, "cadence backs off exponentially");
        assert!(!rt.in_probation());
        assert_eq!(rt.window.count(), 0, "polluted window is discarded");
    }

    #[test]
    fn probation_rolls_back_on_score_collapse_too() {
        // The other failure direction: a harmful update that *collapses*
        // scores (model goes blind) must trip the two-sided drift band.
        let mut cfg = AdaptationConfig::enabled();
        cfg.min_samples = 8;
        cfg.guard.max_drift = 2.0;
        cfg.guard.probation = 64;
        cfg.window = 16;
        let mut rt = AdaptiveRuntime::new(cfg, 1.0);
        for _ in 0..16 {
            rt.observe(1.0, DataQuality::Clean, true, true);
        }
        let ps = ParamStore::new();
        rt.note_finetune(ps.snapshot(), 0xBEEF, &TrainReport::default());
        for _ in 0..32 {
            rt.observe(0.01, DataQuality::Clean, true, true);
        }
        assert!(rt.probation_action().is_some(), "collapse must roll back");
        assert_eq!(rt.stats().rollbacks, 1);
    }

    #[test]
    fn clean_probation_halves_backoff() {
        let mut cfg = AdaptationConfig::enabled();
        cfg.guard.probation = 4;
        let mut rt = AdaptiveRuntime::new(cfg, 1.0);
        rt.stats.cadence_mult = 8;
        let ps = ParamStore::new();
        rt.note_finetune(ps.snapshot(), 1, &TrainReport::default());
        for _ in 0..4 {
            rt.observe(1.0, DataQuality::Clean, true, true);
        }
        assert!(rt.probation_action().is_none());
        assert!(!rt.in_probation());
        assert_eq!(rt.stats().cadence_mult, 4);
    }

    #[test]
    fn reservoir_is_a_ring() {
        let mut cfg = AdaptationConfig::enabled();
        cfg.finetune.reservoir = 4;
        let mut rt = AdaptiveRuntime::new(cfg, 1.0);
        for i in 0..10 {
            rt.offer_window(vec![i as f32]);
        }
        assert_eq!(rt.reservoir_len(), 4);
        let drained = rt.drain_reservoir();
        let mut vals: Vec<f32> = drained.iter().map(|w| w[0]).collect();
        vals.sort_by(f32::total_cmp);
        assert_eq!(vals, vec![6.0, 7.0, 8.0, 9.0], "newest windows survive");
        assert_eq!(rt.reservoir_len(), 0);
    }

    #[test]
    fn adaptive_snapshot_roundtrips_through_json() {
        let snap = AdaptiveSnapshot {
            threshold: 0.125,
            recalibrations: 7,
            cadence_mult: 4,
            last_good_hash: 0xCAFE_F00D,
        };
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: AdaptiveSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn param_hash_changes_with_values() {
        let mut ps = ParamStore::new();
        ps.add("w", vec![1.0, 2.0], vec![2]);
        let h1 = param_hash(&ps);
        ps.get_mut(tfmae_tensor::ParamId(0)).data[0] = 1.5;
        let h2 = param_hash(&ps);
        assert_ne!(h1, h2);
    }
}
