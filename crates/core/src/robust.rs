//! Training guardrails: divergence detection, parameter rollback and
//! learning-rate backoff for [`TfmaeDetector::fit`](crate::TfmaeDetector).
//!
//! Live telemetry is exactly the setting where training data contains the
//! pathologies the detector exists to find — NaN sensor readings, huge
//! spikes, dead channels. Without guardrails a single non-finite loss
//! silently poisons every parameter through Adam's moment estimates and the
//! run "completes" with a useless model. The [`TrainGuard`] certifies each
//! step *before* the optimizer applies it: the last certified parameter
//! state (plus the optimizer's moments) is kept as a snapshot, and any step
//! whose loss or gradients are non-finite — or whose loss explodes past a
//! configurable multiple of the best certified loss — is rolled back and
//! retried at a reduced learning rate. Outcomes are reported in a
//! structured [`TrainReport`] instead of being silently swallowed.

use tfmae_nn::Adam;
use tfmae_tensor::{ExecStats, ParamSnapshot, ParamStore};

/// Guardrail configuration (on by default; disable for the ablation that
/// reproduces the unguarded seed behaviour bit-for-bit).
#[derive(Clone, Debug, PartialEq)]
pub struct RobustnessConfig {
    /// Master switch. When `false`, `fit` behaves exactly as the unguarded
    /// training loop (no snapshots, no checks, no extra cost).
    pub enabled: bool,
    /// Multiplied into the learning rate after every rollback.
    pub lr_backoff: f32,
    /// Total rollback budget for one `fit`; once exhausted training aborts
    /// with the last certified parameters ([`TrainReport::aborted`]). Note a
    /// persistently bad batch burns `max_retries_per_batch + 1` rollbacks
    /// before it is skipped, so keep this a healthy multiple of that.
    pub max_rollbacks: u32,
    /// How often one batch is retried after a rollback before it is skipped
    /// (a batch that keeps producing non-finite losses is data-poisoned,
    /// not a transient divergence).
    pub max_retries_per_batch: u32,
    /// A *finite* loss exceeding `divergence_factor ×` the best certified
    /// loss counts as divergence. Large by default so healthy training
    /// never trips it.
    pub divergence_factor: f32,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            lr_backoff: 0.5,
            max_rollbacks: 32,
            max_retries_per_batch: 2,
            divergence_factor: 1e3,
        }
    }
}

impl RobustnessConfig {
    /// Guardrails disabled: bit-identical to the pre-guardrail trainer.
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// Structured outcome of one guarded `fit` (all zeros on a clean run).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainReport {
    /// Optimizer steps successfully applied.
    pub steps: u64,
    /// Rollbacks to the last certified snapshot.
    pub rollbacks: u32,
    /// Batches abandoned after exhausting their retry budget.
    pub skipped_batches: u64,
    /// Learning rate in effect when training finished.
    pub final_lr: f32,
    /// Whether the rollback budget ran out and training stopped early (the
    /// model holds the last certified parameters).
    pub aborted: bool,
    /// Execution-layer counters from the detector's [`Executor`]
    /// (worker threads, dispatched tasks, buffer-pool hit rate, recycled
    /// bytes) sampled when `fit` finished.
    ///
    /// [`Executor`]: tfmae_tensor::Executor
    pub exec: ExecStats,
}

/// Why a step was rejected (see [`TrainGuard::inspect`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepFault {
    /// The batch loss was NaN or ±Inf.
    NonFiniteLoss,
    /// Backpropagation produced a NaN or ±Inf gradient.
    NonFiniteGrad,
    /// The loss was finite but exploded past `divergence_factor ×` the best
    /// certified loss.
    Diverged,
}

/// The guard itself: owns the last certified snapshot and the report.
pub struct TrainGuard {
    cfg: RobustnessConfig,
    snapshot: ParamSnapshot,
    opt_snapshot: Adam,
    current_lr: f32,
    best_loss: f64,
    /// Running outcome; copied into the detector after `fit`.
    pub report: TrainReport,
}

impl TrainGuard {
    /// Starts guarding: the initial parameters and optimizer state are the
    /// first certified snapshot.
    pub fn new(cfg: RobustnessConfig, ps: &ParamStore, opt: &Adam) -> Self {
        Self {
            cfg,
            snapshot: ps.snapshot(),
            opt_snapshot: opt.clone(),
            current_lr: opt.lr,
            best_loss: f64::INFINITY,
            report: TrainReport { final_lr: opt.lr, ..TrainReport::default() },
        }
    }

    /// Whether guarding is active.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Inspects a just-computed step (loss and accumulated gradients,
    /// *before* the optimizer update). `None` means the step is safe.
    pub fn inspect(&self, loss: f32, ps: &ParamStore) -> Option<StepFault> {
        if !self.cfg.enabled {
            return None;
        }
        if !loss.is_finite() {
            return Some(StepFault::NonFiniteLoss);
        }
        if self.best_loss.is_finite()
            && (loss as f64) > self.cfg.divergence_factor as f64 * (self.best_loss + 1e-9)
        {
            return Some(StepFault::Diverged);
        }
        if !ps.grads_finite() {
            return Some(StepFault::NonFiniteGrad);
        }
        None
    }

    /// Certifies the *current* (pre-update) state as good: it becomes the
    /// rollback target. Call right before `opt.step`.
    pub fn certify(&mut self, loss: f32, ps: &ParamStore, opt: &Adam) {
        if !self.cfg.enabled {
            return;
        }
        self.best_loss = self.best_loss.min(loss as f64);
        self.snapshot = ps.snapshot();
        self.opt_snapshot = opt.clone();
    }

    /// Rolls parameters and optimizer back to the last certified snapshot
    /// and cuts the learning rate. Returns `false` once the rollback budget
    /// is exhausted (training should abort; the model already holds the
    /// last certified parameters).
    pub fn rollback(&mut self, ps: &mut ParamStore, opt: &mut Adam) -> bool {
        self.report.rollbacks += 1;
        static ROLLBACKS: tfmae_obs::LazyCounter = tfmae_obs::LazyCounter::new("train.rollbacks");
        ROLLBACKS.inc();
        tfmae_obs::event("train.rollback");
        ps.restore(&self.snapshot);
        *opt = self.opt_snapshot.clone();
        self.current_lr *= self.cfg.lr_backoff;
        opt.lr = self.current_lr;
        self.report.final_lr = self.current_lr;
        self.report.rollbacks <= self.cfg.max_rollbacks
    }

    /// Finalizes the report after training.
    pub fn finish(mut self, steps: u64, aborted: bool, final_lr: f32) -> TrainReport {
        self.report.steps = steps;
        self.report.aborted = aborted;
        self.report.final_lr = final_lr;
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (ParamStore, Adam) {
        let mut ps = ParamStore::new();
        ps.add("w", vec![1.0, -2.0], vec![2]);
        let opt = Adam::new(&ps, 0.1);
        (ps, opt)
    }

    #[test]
    fn clean_steps_pass_inspection() {
        let (ps, opt) = store();
        let guard = TrainGuard::new(RobustnessConfig::default(), &ps, &opt);
        assert_eq!(guard.inspect(0.5, &ps), None);
    }

    #[test]
    fn non_finite_loss_is_flagged() {
        let (ps, opt) = store();
        let guard = TrainGuard::new(RobustnessConfig::default(), &ps, &opt);
        assert_eq!(guard.inspect(f32::NAN, &ps), Some(StepFault::NonFiniteLoss));
        assert_eq!(guard.inspect(f32::INFINITY, &ps), Some(StepFault::NonFiniteLoss));
    }

    #[test]
    fn non_finite_grad_is_flagged() {
        let (mut ps, opt) = store();
        let guard = TrainGuard::new(RobustnessConfig::default(), &ps, &opt);
        let id = tfmae_tensor::ParamId(0);
        ps.accumulate_grad(id, &[f32::NAN, 0.0]);
        assert_eq!(guard.inspect(0.5, &ps), Some(StepFault::NonFiniteGrad));
    }

    #[test]
    fn divergence_past_factor_is_flagged() {
        let (ps, opt) = store();
        let mut guard = TrainGuard::new(RobustnessConfig::default(), &ps, &opt);
        guard.certify(1.0, &ps, &opt);
        assert_eq!(guard.inspect(2.0, &ps), None, "small fluctuation is fine");
        assert_eq!(guard.inspect(2000.0, &ps), Some(StepFault::Diverged));
    }

    #[test]
    fn rollback_restores_params_and_cuts_lr() {
        let (mut ps, mut opt) = store();
        let mut guard = TrainGuard::new(RobustnessConfig::default(), &ps, &opt);
        guard.certify(1.0, &ps, &opt);
        let id = tfmae_tensor::ParamId(0);
        ps.get_mut(id).data[0] = f32::NAN;
        assert!(guard.rollback(&mut ps, &mut opt));
        assert_eq!(ps.get(id).data, vec![1.0, -2.0]);
        assert!((opt.lr - 0.05).abs() < 1e-9, "lr halved, got {}", opt.lr);
        assert_eq!(guard.report.rollbacks, 1);
    }

    #[test]
    fn rollback_budget_is_bounded() {
        let cfg = RobustnessConfig { max_rollbacks: 2, ..RobustnessConfig::default() };
        let (mut ps, mut opt) = store();
        let mut guard = TrainGuard::new(cfg, &ps, &opt);
        assert!(guard.rollback(&mut ps, &mut opt));
        assert!(guard.rollback(&mut ps, &mut opt));
        assert!(!guard.rollback(&mut ps, &mut opt), "third rollback exceeds the budget");
    }

    #[test]
    fn disabled_guard_never_flags() {
        let (ps, opt) = store();
        let guard = TrainGuard::new(RobustnessConfig::disabled(), &ps, &opt);
        assert_eq!(guard.inspect(f32::NAN, &ps), None);
    }
}
