//! End-to-end TFMAE detector: normalization → windowing → training loop →
//! per-observation scoring (§IV-D).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tfmae_data::{
    batch_windows, extract_windows, Detector, FitReport, ScoreAccumulator, TimeSeries, ZScore,
};
use tfmae_nn::{Adam, Ctx};
use tfmae_obs::{LazyCounter, LazySpan, Span};
use tfmae_tensor::{ExecStats, Executor, Graph, Precision, QuantStore};

use crate::config::TfmaeConfig;
use crate::model::TfmaeModel;
use crate::robust::{RobustnessConfig, TrainGuard, TrainReport};

/// TFMAE wrapped as a [`Detector`] with the paper's training protocol.
pub struct TfmaeDetector {
    /// Hyper-parameters (frozen at `fit` time).
    pub cfg: TfmaeConfig,
    /// Training guardrails (divergence rollback + LR backoff); on by
    /// default, see [`RobustnessConfig`].
    pub robust: RobustnessConfig,
    model: Option<TfmaeModel>,
    norm: Option<ZScore>,
    /// Quantized 2-D weight copies for low-precision serving (`None` = the
    /// f32 path). Set by [`TfmaeDetector::set_precision`], which also
    /// releases the f32 data of the quantized weights — a quantized
    /// detector is serve-only.
    quant: Option<QuantStore>,
    /// Execution backend: worker pool + recycled tape buffers, shared by
    /// every graph this detector builds (thread count honours
    /// [`tfmae_tensor::THREADS_ENV`]).
    exec: Arc<Executor>,
    /// Resource accounting from the last `fit` (Fig. 10).
    pub fit_report: FitReport,
    /// Guardrail outcome of the last `fit` (rollbacks, skipped batches,
    /// final learning rate).
    pub train_report: TrainReport,
    /// Per-step training losses from the last `fit` (diagnostics; only
    /// certified steps appear here).
    pub loss_curve: Vec<f32>,
}

impl TfmaeDetector {
    /// Creates an untrained detector.
    pub fn new(cfg: TfmaeConfig) -> Self {
        Self {
            cfg,
            robust: RobustnessConfig::default(),
            model: None,
            norm: None,
            quant: None,
            exec: Arc::new(Executor::from_env()),
            fit_report: FitReport::default(),
            train_report: TrainReport::default(),
            loss_curve: Vec::new(),
        }
    }

    /// Replaces the execution backend (thread count / buffer pool). Useful
    /// for determinism tests that pin an explicit worker count instead of
    /// the environment default.
    pub fn set_executor(&mut self, exec: Arc<Executor>) {
        self.exec = exec;
    }

    /// The execution backend in use.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }

    /// Execution-layer counters (tasks dispatched, pool hit rate, bytes
    /// recycled) accumulated across everything this detector has run.
    pub fn exec_stats(&self) -> ExecStats {
        self.exec.stats()
    }

    /// Access to the trained model (after `fit`).
    pub fn model(&self) -> Option<&TfmaeModel> {
        self.model.as_ref()
    }

    /// Mutable model access for the serving-side adaptation loop (snapshot
    /// restore after a guard-band rollback).
    pub(crate) fn model_mut(&mut self) -> Option<&mut TfmaeModel> {
        self.model.as_mut()
    }

    /// Access to the fitted normalizer (after `fit`).
    pub fn norm(&self) -> Option<&ZScore> {
        self.norm.as_ref()
    }

    /// The serving precision: [`Precision::F32`] unless
    /// [`TfmaeDetector::set_precision`] installed quantized weights.
    pub fn precision(&self) -> Precision {
        self.quant.as_ref().map_or(Precision::F32, |q| q.precision())
    }

    /// The quantized weight store, when serving at reduced precision.
    pub fn quant(&self) -> Option<&QuantStore> {
        self.quant.as_ref()
    }

    /// Switches the detector to a serving precision. `F32` is a no-op on an
    /// unquantized detector; `Bf16`/`Int8` quantize every 2-D weight (per
    /// [`QuantStore::from_params`], with per-layer parity bounds asserted)
    /// and **release the f32 copies** — the memory win this path exists
    /// for. A quantized detector is serve-only: it scores, but it cannot be
    /// re-quantized at another precision, fine-tuned, refitted in place or
    /// checkpointed (reload the f32 checkpoint for any of those).
    pub fn set_precision(&mut self, precision: Precision) -> Result<(), String> {
        if precision == self.precision() {
            return Ok(());
        }
        if self.quant.is_some() {
            return Err(format!(
                "detector already quantized to {}; the f32 weights were released — \
                 reload the checkpoint to change precision",
                self.precision()
            ));
        }
        let model = self.model.as_mut().ok_or("fit or load before set_precision")?;
        if !model.ps.values_finite() {
            return Err("model has non-finite weights; refusing to quantize".into());
        }
        let quant = QuantStore::from_params(&model.ps, precision);
        static QUANT_SAVED: tfmae_obs::LazyGauge =
            tfmae_obs::LazyGauge::new("serve.quant_bytes_saved");
        // data + grad of every quantized weight go, replaced by the packed
        // copy; 1-D parameters (biases, norms, mask tokens) stay f32.
        let mut released = 0usize;
        for (id, _) in quant.params() {
            let p = model.ps.get_mut(id);
            released += (p.data.len() + p.grad.len()) * std::mem::size_of::<f32>();
            p.data = Vec::new();
            p.grad = Vec::new();
        }
        QUANT_SAVED.set(released.saturating_sub(quant.bytes()) as i64);
        self.quant = Some(quant);
        Ok(())
    }

    /// A few guarded optimizer steps on already-normalized `[win_len ×
    /// dims]` windows — the background fine-tune of the serving adaptation
    /// loop (see [`crate::adapt`]). Runs under a fresh
    /// [`TrainGuard`] with `ft.robust`, so non-finite or diverged steps
    /// roll back and back off the learning rate exactly as in `fit`; the
    /// model is left at the last certified parameters. `salt` decorrelates
    /// the mask/shuffle RNG across successive updates (deterministic per
    /// `(seed, salt)`).
    ///
    /// Returns the guard's [`TrainReport`]; a default (all-zero) report is
    /// returned when the detector is unfitted, quantized (the f32 weights
    /// gradient descent needs were released) or `windows` is empty.
    pub fn finetune(&mut self, windows: &[Vec<f32>], ft: &crate::adapt::FinetuneConfig, salt: u64) -> TrainReport {
        let cfg = self.cfg.clone();
        let exec = self.exec.clone();
        if self.quant.is_some() {
            return TrainReport::default();
        }
        let Some(model) = self.model.as_mut() else { return TrainReport::default() };
        if windows.is_empty() || ft.steps == 0 {
            return TrainReport::default();
        }
        let row = cfg.win_len * model.dims();
        debug_assert!(windows.iter().all(|w| w.len() == row), "window shape mismatch");
        static TUNE_SPAN: LazySpan = LazySpan::new("serve.finetune_ns");
        let _tune_span = TUNE_SPAN.enter();

        let lr = if ft.lr > 0.0 { ft.lr } else { cfg.finetune_lr() };
        let mut opt = Adam::new(&model.ps, lr);
        let mut guard = TrainGuard::new(ft.robust.clone(), &model.ps, &opt);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xf17e ^ salt.rotate_left(17));
        let g = Graph::with_executor(exec);
        let mut order: Vec<usize> = (0..windows.len()).collect();
        let mut steps_done: u64 = 0;
        let mut aborted = false;
        'steps: for step in 0..ft.steps {
            order.shuffle(&mut rng);
            let b = ft.batch.clamp(1, windows.len());
            let mut values = Vec::with_capacity(b * row);
            for &wi in order.iter().take(b) {
                values.extend_from_slice(&windows[wi]);
            }
            let batch = model.prepare_batch(values, b, &mut rng);
            let mut retries = 0u32;
            loop {
                g.reset();
                let ctx = Ctx::train(&g, &model.ps, cfg.seed ^ salt ^ step as u64);
                let out = model.forward(&ctx, &batch);
                let loss = model.training_loss(&ctx, &out);
                let loss_val = g.scalar_value(loss);
                g.backward_params_pooled(loss, &mut model.ps);
                if guard.inspect(loss_val, &model.ps).is_none() {
                    guard.certify(loss_val, &model.ps, &opt);
                    opt.step(&mut model.ps);
                    steps_done += 1;
                    break;
                }
                model.ps.zero_grads();
                if !guard.rollback(&mut model.ps, &mut opt) {
                    aborted = true;
                    break 'steps;
                }
                retries += 1;
                if retries > ft.robust.max_retries_per_batch {
                    guard.report.skipped_batches += 1;
                    break;
                }
            }
        }
        guard.finish(steps_done, aborted, opt.lr)
    }

    /// Reassembles a detector from checkpoint parts (see
    /// [`crate::checkpoint`]).
    pub fn from_parts(cfg: TfmaeConfig, model: TfmaeModel, norm: ZScore) -> Self {
        Self {
            cfg,
            robust: RobustnessConfig::default(),
            model: Some(model),
            norm: Some(norm),
            quant: None,
            exec: Arc::new(Executor::from_env()),
            fit_report: FitReport::default(),
            train_report: TrainReport::default(),
            loss_curve: Vec::new(),
        }
    }

    /// Per-observation score components `(latent KL, dual-recon)` for a
    /// series, each folded onto the timeline but **not** combined — used by
    /// callers that need to freeze normalization constants (e.g. online
    /// scoring, see [`crate::stream`]).
    pub fn score_components(&self, series: &TimeSeries) -> (Vec<f32>, Vec<f32>) {
        let model = self.model.as_ref().expect("fit before score");
        let norm = self.norm.as_ref().expect("fit before score");
        self.components_normalized(model, &norm.transform(series))
    }

    fn score_normalized(&self, model: &TfmaeModel, series: &TimeSeries) -> Vec<f32> {
        let (kl, dual) = self.components_normalized(model, series);
        crate::model::combine_scores(self.cfg.score, &kl, &dual)
    }

    fn components_normalized(
        &self,
        model: &TfmaeModel,
        series: &TimeSeries,
    ) -> (Vec<f32>, Vec<f32>) {
        let t = self.cfg.win_len;
        let windows = extract_windows(series, t, t);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5c0e);
        // Fold each component straight out of the batch output buffers;
        // `score_normalized` combines them with *series-global* means so
        // batch boundaries leave no seams.
        let mut kl_fold = ScoreAccumulator::new(series.len(), t);
        let mut dual_fold = ScoreAccumulator::new(series.len(), t);
        // One tape for every batch: `reset` drains the nodes back into the
        // executor's buffer pool so steady-state scoring allocates nothing.
        let g = Graph::with_executor(self.exec.clone());
        for (starts, values) in batch_windows(&windows, self.cfg.batch) {
            g.reset();
            let b = starts.len();
            let batch = model.prepare_batch(values, b, &mut rng);
            let ctx = match &self.quant {
                Some(q) => Ctx::eval_quant(&g, &model.ps, q),
                None => Ctx::eval(&g, &model.ps),
            };
            let out = model.forward(&ctx, &batch);
            let (kl, dual) = model.anomaly_score_components(&ctx, &out);
            for (wi, &start) in starts.iter().enumerate() {
                kl_fold.add(start, &kl[wi * t..(wi + 1) * t]);
                dual_fold.add(start, &dual[wi * t..(wi + 1) * t]);
            }
        }
        (kl_fold.finish(), dual_fold.finish())
    }
}

impl Detector for TfmaeDetector {
    fn name(&self) -> String {
        "TFMAE".to_string()
    }

    fn fit(&mut self, train: &TimeSeries, _val: &TimeSeries) {
        let cfg = self.cfg.clone();
        cfg.validate().expect("invalid TfmaeConfig");
        let _fit_span = Span::enter("train.fit_ns");
        let start = Instant::now();

        let norm = ZScore::fit(train);
        let train_n = norm.transform(train);
        let mut model = TfmaeModel::new(cfg.clone(), train.dims());
        let mut opt = Adam::new(&model.ps, cfg.lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xf17);

        let windows = extract_windows(&train_n, cfg.win_len, cfg.train_stride.min(cfg.win_len));
        // Masks depend only on window contents (Eq. 2/8), so compute them
        // once per window and reuse across epochs. The Random mask variants
        // intentionally redraw every epoch instead.
        let reuse_masks = cfg.temporal_mask != crate::config::TemporalMaskKind::Random
            && cfg.freq_mask != crate::config::FreqMaskKind::Random;
        let mut mask_cache: Vec<(crate::masking::temporal::TemporalMask, crate::masking::frequency::FrequencyMaskData)> =
            if reuse_masks {
                windows.iter().map(|w| model.window_masks(&w.values, &mut rng)).collect()
            } else {
                Vec::new()
            };

        let mut guard = TrainGuard::new(self.robust.clone(), &model.ps, &opt);
        let max_retries = self.robust.max_retries_per_batch;
        let mut aborted = false;

        let mut losses = Vec::new();
        let mut max_activation = 0usize;
        let mut step: u64 = 0;
        let mut last_batch: Option<crate::model::BatchInputs> = None;
        let mut order: Vec<usize> = (0..windows.len()).collect();
        // One persistent tape for the whole fit: `reset` returns every node
        // buffer to the executor's pool, so after the first batch warms it
        // up the training loop performs zero per-step tape allocations.
        let g = Graph::with_executor(self.exec.clone());
        'epochs: for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch) {
                let b = chunk.len();
                let mut values = Vec::with_capacity(b * cfg.win_len * train.dims());
                for &wi in chunk {
                    values.extend_from_slice(&windows[wi].values);
                }
                let batch = if reuse_masks {
                    crate::model::BatchInputs {
                        values,
                        b,
                        masks_t: chunk.iter().map(|&wi| mask_cache[wi].0.clone()).collect(),
                        masks_f: chunk.iter().map(|&wi| mask_cache[wi].1.clone()).collect(),
                    }
                } else {
                    model.prepare_batch(values, b, &mut rng)
                };
                // Guarded step: a batch whose loss/gradients are non-finite
                // (or whose loss diverges) is rolled back to the last
                // certified parameters and retried at a reduced LR; batches
                // that keep failing are skipped, and an exhausted rollback
                // budget aborts training on the last certified state.
                let mut retries = 0u32;
                let mut applied = false;
                loop {
                    static STEP_SPAN: LazySpan = LazySpan::new("train.step_ns");
                    let _step_span = STEP_SPAN.enter();
                    g.reset();
                    let ctx = Ctx::train(&g, &model.ps, cfg.seed ^ step);
                    let out = model.forward(&ctx, &batch);
                    let loss = model.training_loss(&ctx, &out);
                    let loss_val = g.scalar_value(loss);
                    g.backward_params_pooled(loss, &mut model.ps);
                    if guard.inspect(loss_val, &model.ps).is_none() {
                        guard.certify(loss_val, &model.ps, &opt);
                        opt.step(&mut model.ps);
                        max_activation = max_activation.max(g.activation_bytes());
                        losses.push(loss_val);
                        step += 1;
                        static STEPS: LazyCounter = LazyCounter::new("train.steps");
                        STEPS.inc();
                        applied = true;
                        break;
                    }
                    model.ps.zero_grads();
                    if !guard.rollback(&mut model.ps, &mut opt) {
                        aborted = true;
                        break 'epochs;
                    }
                    retries += 1;
                    if retries > max_retries {
                        guard.report.skipped_batches += 1;
                        static SKIPPED: LazyCounter = LazyCounter::new("train.skipped_batches");
                        SKIPPED.inc();
                        tfmae_obs::event("train.skip_batch");
                        break;
                    }
                }
                last_batch = if applied { Some(batch) } else { None };
            }
        }
        mask_cache.clear();

        // The guard certifies parameters *before* each update, so the very
        // last optimizer step is never covered by an in-loop check. Validate
        // it with one extra forward pass and roll back if it poisoned the
        // model (e.g. a huge-LR blow-up on the final batch).
        if guard.enabled() && !aborted {
            if let Some(batch) = last_batch.take() {
                g.reset();
                let ctx = Ctx::train(&g, &model.ps, cfg.seed ^ step);
                let out = model.forward(&ctx, &batch);
                let loss = model.training_loss(&ctx, &out);
                let loss_val = g.scalar_value(loss);
                if !model.ps.values_finite() || guard.inspect(loss_val, &model.ps).is_some() {
                    guard.rollback(&mut model.ps, &mut opt);
                }
            }
        }

        self.fit_report = FitReport {
            seconds: start.elapsed().as_secs_f64(),
            bytes: model.ps.bytes() + max_activation,
            steps: step,
            final_loss: losses.last().copied().unwrap_or(0.0) as f64,
        };
        self.train_report = guard.finish(step, aborted, opt.lr);
        self.train_report.exec = self.exec.stats();
        self.loss_curve = losses;
        self.model = Some(model);
        self.norm = Some(norm);
        // A refit always lands in f32: the fresh weights supersede any
        // quantized copies of the old ones.
        self.quant = None;
    }

    fn score(&self, series: &TimeSeries) -> Vec<f32> {
        let model = self.model.as_ref().expect("fit before score");
        let norm = self.norm.as_ref().expect("fit before score");
        self.score_normalized(model, &norm.transform(series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfmae_data::{Component, render};

    fn tiny_series(len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = render(
            &[
                Component::Sine { period: 16.0, amp: 1.0, phase: 0.0 },
                Component::Noise { sigma: 0.05 },
            ],
            len,
            &mut rng,
        );
        let b = render(
            &[
                Component::Sine { period: 8.0, amp: 0.5, phase: 1.0 },
                Component::Noise { sigma: 0.05 },
            ],
            len,
            &mut rng,
        );
        TimeSeries::from_channels(&[a, b])
    }

    #[test]
    fn fit_and_score_end_to_end() {
        let train = tiny_series(256, 1);
        let val = tiny_series(64, 2);
        let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
        det.fit(&train, &val);
        assert!(det.fit_report.steps > 0);
        assert!(det.fit_report.seconds > 0.0);
        assert!(det.fit_report.bytes > 0);
        assert!(det.loss_curve.iter().all(|l| l.is_finite()));

        let test = tiny_series(128, 3);
        let scores = det.score(&test);
        assert_eq!(scores.len(), 128);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn set_precision_releases_f32_and_enforces_serve_only() {
        let train = tiny_series(256, 40);
        let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
        det.fit(&train, &train);
        let test = tiny_series(128, 41);
        let want = det.score(&test);

        assert_eq!(det.precision(), Precision::F32);
        det.set_precision(Precision::F32).unwrap(); // no-op
        assert!(det.quant().is_none());

        det.set_precision(Precision::Bf16).unwrap();
        assert_eq!(det.precision(), Precision::Bf16);
        let model = det.model().unwrap();
        for p in model.ps.params() {
            if p.shape.len() == 2 {
                assert!(p.data.is_empty() && p.grad.is_empty(), "{} not released", p.name);
            } else {
                assert_eq!(p.data.len(), p.shape.iter().product::<usize>(), "{}", p.name);
            }
        }
        let got = det.score(&test);
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() <= 0.05 * (1.0 + b.abs()), "bf16 {a} vs f32 {b}");
        }

        // Serve-only: the released f32 weights rule out everything below.
        assert!(det.set_precision(Precision::Int8).is_err());
        assert!(det.set_precision(Precision::F32).is_err());
        det.set_precision(Precision::Bf16).unwrap(); // same precision: fine
        let ft = crate::adapt::FinetuneConfig { enabled: true, ..Default::default() };
        let windows = vec![vec![0.0; det.cfg.win_len]];
        assert_eq!(det.finetune(&windows, &ft, 0).steps, 0, "no fine-tune when quantized");

        // A refit replaces the weights and lands back in f32.
        det.fit(&train, &train);
        assert_eq!(det.precision(), Precision::F32);
        assert!(det.score(&test).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn spike_scores_above_median() {
        let train = tiny_series(512, 4);
        let val = tiny_series(64, 5);
        let mut cfg = TfmaeConfig::tiny();
        cfg.epochs = 4;
        let mut det = TfmaeDetector::new(cfg);
        det.fit(&train, &val);

        let mut test = tiny_series(160, 6);
        let spike_t = 80;
        test.set(spike_t, 0, 12.0);
        let scores = det.score(&test);
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[scores.len() / 2];
        let local_max =
            (spike_t.saturating_sub(2)..=(spike_t + 2)).map(|t| scores[t]).fold(f32::MIN, f32::max);
        assert!(
            local_max > median,
            "spike region should outscore the median: {local_max} vs {median}"
        );
    }

    #[test]
    #[should_panic(expected = "fit before score")]
    fn scoring_before_fit_panics() {
        let det = TfmaeDetector::new(TfmaeConfig::tiny());
        det.score(&tiny_series(64, 0));
    }

    #[test]
    fn nan_training_data_recovers_with_rollbacks() {
        // Poison a stretch of the training series with NaNs: the guard must
        // record the faults and still hand back a usable (finite) model.
        let mut train = tiny_series(256, 10);
        for t in 100..110 {
            train.set(t, 0, f32::NAN);
        }
        let val = tiny_series(64, 11);
        let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
        det.fit(&train, &val);
        let report = det.train_report.clone();
        assert!(
            report.rollbacks > 0 || report.skipped_batches > 0,
            "NaN batches should trip the guard: {report:?}"
        );
        assert!(det.loss_curve.iter().all(|l| l.is_finite()));
        let scores = det.score(&tiny_series(96, 12));
        assert!(scores.iter().all(|s| s.is_finite()), "scores must stay finite");
    }

    #[test]
    fn disabled_guard_matches_default_on_clean_data() {
        // On clean data the guard only observes, so scores are bit-identical
        // with and without it.
        let train = tiny_series(256, 13);
        let val = tiny_series(64, 14);
        let test = tiny_series(96, 15);
        let run = |robust: RobustnessConfig| {
            let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
            det.robust = robust;
            det.fit(&train, &val);
            (det.score(&test), det.train_report.clone())
        };
        let (guarded, report) = run(RobustnessConfig::default());
        let (unguarded, _) = run(RobustnessConfig::disabled());
        assert_eq!(guarded, unguarded);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.skipped_batches, 0);
        assert!(!report.aborted);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = tiny_series(256, 7);
        let val = tiny_series(64, 8);
        let test = tiny_series(96, 9);
        let run = || {
            let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
            det.fit(&train, &val);
            det.score(&test)
        };
        assert_eq!(run(), run());
    }
}
