//! # tfmae-core
//!
//! The paper's primary contribution: **Temporal-Frequency Masked
//! AutoEncoders** for time-series anomaly detection (Fang et al., ICDE
//! 2024), implemented from scratch on the workspace's own tensor, NN and
//! FFT substrates.
//!
//! Pipeline (Fig. 2): window-based temporal masking (coefficient of
//! variation, FFT-accelerated — Eq. 1–5) and amplitude-based frequency
//! masking (Eq. 6–10) produce two purified views; two Transformer
//! autoencoders encode them (Fig. 5); the adversarial contrastive objective
//! (Eq. 14–15) aligns/repels the views with stop-gradients; the
//! per-observation symmetric KL divergence is the anomaly score (Eq. 16),
//! thresholded at a validation quantile (Eq. 17).
//!
//! ```
//! use tfmae_core::{TfmaeConfig, TfmaeDetector};
//! use tfmae_data::{generate, DatasetKind, Detector};
//! use tfmae_metrics::{apply_threshold, point_adjust, threshold_for_ratio, Prf};
//!
//! let bench = generate(DatasetKind::NipsTsGlobal, 7, 800);
//! let mut cfg = TfmaeConfig::tiny();
//! cfg.epochs = 1;
//! let mut det = TfmaeDetector::new(cfg);
//! det.fit(&bench.train, &bench.val);
//!
//! let delta = threshold_for_ratio(&det.score(&bench.val), 0.05);
//! let pred = apply_threshold(&det.score(&bench.test), delta);
//! let prf = Prf::from_predictions(&point_adjust(&pred, &bench.test_labels), &bench.test_labels);
//! assert!(prf.f1 >= 0.0); // full protocol runs end to end
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod ablation;
pub mod adapt;
pub mod checkpoint;
pub mod config;
pub mod detector;
pub mod masking;
pub mod model;
pub mod robust;
pub mod serving;
pub mod stream;

pub use ablation::{MaskAblation, ModelAblation};
pub use adapt::{
    param_hash, AdaptationConfig, AdaptationStats, AdaptiveSnapshot, FinetuneConfig, GuardBand,
    ScoreWindow,
};
pub use checkpoint::{
    inspect_checkpoint, Checkpoint, CheckpointError, CheckpointInfo, PatchMeta, QuantMeta,
    QuantParamMeta, CHECKPOINT_VERSION,
};
pub use config::{AdversarialMode, FreqMaskKind, ScoreKind, TemporalMaskKind, TfmaeConfig};
pub use detector::TfmaeDetector;
pub use masking::frequency::{frequency_mask, frequency_mask_from_spectra, FrequencyMaskData};
pub use masking::temporal::{
    cv_statistic, fold_stat_to_patches, temporal_mask, temporal_mask_from_stat,
    temporal_mask_patched, TemporalMask,
};
pub use model::{combine_scores, BatchInputs, BranchOutputs, TfmaeModel};
pub use robust::{RobustnessConfig, StepFault, TrainGuard, TrainReport};
pub use serving::{
    RejectReason, RowRejection, ServingConfig, ServingEngine, ServingVerdict, TickReport,
};
pub use stream::{
    DataQuality, DegradedModeConfig, StreamHealth, StreamMode, StreamVerdict, StreamingDetector,
};
/// Re-exported so downstream crates can pick a serving precision (and
/// inspect quantized weight panels) without a direct tensor dependency.
pub use tfmae_tensor::{Precision, QuantStore};
