//! Multi-stream serving engine: cross-stream batched scoring with
//! incremental masking state.
//!
//! [`crate::stream::StreamingDetector`] scores one stream at a time: every
//! completed hop rebuilds its window, recomputes the trailing-CV statistic
//! (Eq. 1–5) and the per-channel rfft (Eq. 6–8) from scratch, and runs a
//! batch-of-one transformer forward. [`ServingEngine`] owns one shared
//! [`TfmaeModel`](crate::model::TfmaeModel) + executor and multiplexes N
//! independent streams over them:
//!
//! * **Cross-stream batching** — windows that become due in the same
//!   [`ServingEngine::tick`] are coalesced into forward batches of up to
//!   [`ServingConfig::max_batch`] windows (by default `cfg.batch` when the
//!   executor has a worker pool, batch-of-one on a single-thread executor
//!   where larger batches only hurt cache residency), so the
//!   blocked-matmul / fused-attention kernels amortize over streams
//!   instead of running `B = 1` per hop. Chunking is verdict-invariant.
//! * **Incremental masking state** — each stream keeps a flat f32 ring
//!   buffer of normalized samples (no `VecDeque<Vec<f32>>`, no per-hop row
//!   copies), O(1) rolling sum/sum-of-squares accumulators for the
//!   trailing-window CV/Std statistic, and a sliding-DFT recurrence that
//!   advances the per-channel half-spectrum in O(L) per sample instead of a
//!   fresh O(L log L) rfft per hop.
//! * **Drift refresh** — the rolling recurrences accumulate floating-point
//!   drift, so every [`ServingConfig::refresh_every`] scored hops (and on
//!   the first hop after warm-up or quarantine re-warm) the engine re-seeds
//!   them from the exact batch path: `cv_statistic`/`std_statistic` for the
//!   temporal stat and a full rfft for the spectrum. Refresh-hop verdicts
//!   are therefore *bitwise identical* to the offline masking path;
//!   between refreshes the parity tests bound the drift at ≤ 1e-5.
//!
//! Degraded-mode semantics (imputation, staleness budget, quarantine — see
//! [`crate::stream`]) are implemented here per stream;
//! `StreamingDetector` is a thin single-stream wrapper over this engine, so
//! the PR 1 fault-handling behavior is preserved verbatim.
//!
//! # Stream sharding
//!
//! With [`ServingConfig::shards`] ` = N > 1` the engine splits into N
//! shards, each owning the per-stream incremental state for its partition
//! of streams (least-loaded assignment on [`ServingEngine::add_stream`],
//! slots recycled on [`ServingEngine::remove_stream`]) plus its own scratch
//! executor — i.e. its own tape arena and `BufferPool` — while all shards
//! score through the one shared read-only model. [`ServingEngine::tick`]
//! fans ingested rows out to their shards over the detector's worker pool
//! (the PR 2 `Executor` is the thread substrate); [`ServingEngine::flush`]
//! forms forward batches *globally in staging order* — batch composition is
//! what decides the floating-point reduction shapes, so it must not depend
//! on the shard count — and shards then claim chunks (their own first,
//! work-stealing any leftover chunk when their queue runs dry) and run the
//! forwards on their private scratch executors. Scored rows merge back on
//! the coordinating thread in staging order, so verdicts are **bitwise
//! identical at any shard count** (test-asserted at 1/2/4), and `shards = 1`
//! takes today's literal serial path. Calibration, threshold adaptation and
//! background fine-tune stay on the coordinating thread: workers only exist
//! inside the blocking fan-out calls, so the fine-tune/rollback snapshot
//! handoff needs no locks — the next flush simply re-borrows the updated
//! detector. Per-shard counters (`serve.shard<k>.rows/windows/chunks/
//! steals`) roll the shard dimension up into the process registry.

use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tfmae_data::TimeSeries;
use tfmae_fft::{Complex64, RollingStats, SlidingDft, CV_EPS};
use tfmae_nn::Ctx;
use tfmae_obs::{Counter, LazyCounter, LazyGauge, LazyHistogram, LazySpan};
use tfmae_tensor::{ExecStats, Executor, Graph, Precision, QuantStore};

use crate::adapt::{param_hash, AdaptationConfig, AdaptationStats, AdaptiveRuntime, AdaptiveSnapshot};
use crate::config::{ScoreKind, TemporalMaskKind, TfmaeConfig};
use crate::detector::TfmaeDetector;
use crate::masking::frequency::{frequency_mask_from_spectra, FrequencyMaskData};
use crate::masking::temporal::{
    cv_statistic, fold_stat_to_patches, std_statistic, temporal_mask_from_stat,
    temporal_mask_patched, TemporalMask,
};
use crate::model::combine_scores;
use crate::stream::{DataQuality, DegradedModeConfig, StreamHealth, StreamMode, StreamVerdict};

/// Serving-side policy shared by every stream of a [`ServingEngine`].
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// The δ of Eq. 17 (from `threshold_for_ratio` on validation scores).
    pub threshold: f32,
    /// Observations between scoring passes per stream (1 ≤ hop ≤ win_len).
    pub hop: usize,
    /// Fault handling (imputation/staleness/quarantine), as in
    /// [`DegradedModeConfig`].
    pub degraded: DegradedModeConfig,
    /// Scored hops between exact re-seeds of the incremental masking state
    /// (rolling stats + sliding DFT). Lower bounds drift tighter at the
    /// price of a full `cv_statistic` + rfft per refresh; `1` refreshes
    /// every hop.
    pub refresh_every: usize,
    /// When `false`, masks are recomputed from scratch each hop via the
    /// batch path (`TfmaeModel::window_masks`) — the pre-engine cost model,
    /// kept as an honest baseline for `bench_serving` and the parity tests.
    pub incremental: bool,
    /// Cap on how many due windows one transformer forward scores. `None`
    /// picks automatically: `cfg.batch` when the executor has workers to
    /// fan the batched kernels out to, and `1` on a single-thread executor,
    /// where batching cannot reduce per-element work but inflates every
    /// per-node tensor past cache residency (batch-of-32 windows measured
    /// ~15–30% slower per window than batch-of-1 on a 1-core host).
    /// Chunking never changes verdicts — batched and solo scoring are
    /// bitwise identical (test-asserted) — so this is purely a throughput
    /// knob.
    pub max_batch: Option<usize>,
    /// Drift adaptation (threshold recalibration, background fine-tune,
    /// guard-band rollback). **Off** by default; with
    /// `adaptation.enabled == false` verdicts are bitwise identical to the
    /// frozen-threshold engine (test-asserted). See [`crate::adapt`].
    pub adaptation: AdaptationConfig,
    /// Serving weight precision. The default `F32` scores through the f32
    /// weights, bitwise identical to the pre-quantization engine; `Bf16` /
    /// `Int8` quantize the detector's 2-D weights at construction
    /// ([`TfmaeDetector::set_precision`]) and score through the packed
    /// copies with f32 accumulation. Quantized serving disables background
    /// fine-tune (the f32 weights it would descend on are released);
    /// threshold recalibration still runs.
    pub precision: Precision,
    /// Engine shards (≥ 1). Each shard owns the incremental state for its
    /// partition of streams plus a private scratch executor (tape arena +
    /// buffer pool); ticks fan rows out to shards and flushes run batched
    /// forwards shard-parallel with chunk-level work-stealing. Verdicts are
    /// bitwise identical at any shard count; `1` (the default) is today's
    /// single-shard engine verbatim. See the module docs.
    pub shards: usize,
}

impl ServingConfig {
    /// Defaults: degraded mode on, refresh every 64 hops, incremental state,
    /// one shard.
    pub fn new(threshold: f32, hop: usize) -> Self {
        Self {
            threshold,
            hop,
            degraded: DegradedModeConfig::default(),
            refresh_every: 64,
            incremental: true,
            max_batch: None,
            adaptation: AdaptationConfig::default(),
            precision: Precision::F32,
            shards: 1,
        }
    }
}

/// One verdict from the engine, tagged with the stream that produced it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServingVerdict {
    /// Stream id (as returned by [`ServingEngine::add_stream`]).
    pub stream: usize,
    /// The scored observation.
    pub verdict: StreamVerdict,
}

/// Why a serving surface refused a row. The engine itself only emits
/// [`RejectReason::UnknownStream`]; the remaining variants type the
/// admission-control decisions of the network front-end (`tfmae-server`),
/// which shares this enum so every layer speaks one rejection vocabulary
/// and rows are never dropped silently or answered with a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The stream id was never registered (or was removed).
    UnknownStream,
    /// The row carries the wrong number of channels for the model it was
    /// routed to. Checked at the network boundary *before* ingestion — the
    /// engine's degraded mode would impute a malformed row, which is the
    /// right call for a flaky sensor but not for a client speaking the
    /// wrong schema.
    WidthMismatch,
    /// The stream's bounded ingest + verdict budget is exhausted: ingest
    /// has outrun scoring, or the consumer stopped polling verdicts. The
    /// row is refused (HTTP 429) rather than queued unboundedly or allowed
    /// to block the scoring tick.
    Backpressure,
    /// The request payload exceeds the server's configured size bound.
    PayloadTooLarge,
    /// The server is draining for shutdown: in-flight rows still score and
    /// their verdicts remain pollable, but no new rows are admitted.
    Draining,
}

impl RejectReason {
    /// Stable machine-readable token (used in wire responses and logs).
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::UnknownStream => "unknown_stream",
            RejectReason::WidthMismatch => "width_mismatch",
            RejectReason::Backpressure => "backpressure",
            RejectReason::PayloadTooLarge => "payload_too_large",
            RejectReason::Draining => "draining",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A row [`ServingEngine::tick`] could not ingest. Rejections are reported
/// per row — the remaining rows of the tick are processed normally — and
/// counted under `serve.rejected_rows`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowRejection {
    /// The stream id the row was addressed to.
    pub stream: usize,
    /// Why it was refused.
    pub reason: RejectReason,
}

/// Outcome of one [`ServingEngine::tick`]: scored verdicts plus the typed
/// per-row rejections (rows addressed to unregistered stream ids used to be
/// a panic; a fleet-facing tick surface must not take the engine down over
/// one bad row).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TickReport {
    /// Verdicts in deterministic stream/staging order, exactly as the
    /// pre-shard engine emitted them.
    pub verdicts: Vec<ServingVerdict>,
    /// Rows refused this tick, in input order.
    pub rejections: Vec<RowRejection>,
}

/// Incremental per-stream state: ring buffer + rolling statistics +
/// sliding-DFT spectra + fault counters.
struct StreamState {
    /// Normalized samples, slot-major `[win_len, dims]`; slot `head` is the
    /// next write position (= the oldest sample once full).
    ring: Vec<f32>,
    /// Per-slot data quality.
    quals: Vec<DataQuality>,
    head: usize,
    filled: usize,
    pushed: u64,
    since_score: usize,
    frozen_norms: Option<(f32, f32)>,
    last_good: Vec<Option<f32>>,
    staleness: Vec<usize>,
    consecutive_bad: usize,
    health: StreamHealth,
    /// Rolling trailing-`cv_window` accumulators, one per channel.
    roll: Vec<RollingStats>,
    /// Per-slot temporal statistic recorded at push time (valid for window
    /// positions whose trailing sub-sequence lies fully inside the window).
    stat_ring: Vec<f64>,
    /// Sliding half-spectrum of the last `win_len` samples, one per channel.
    sdft: Vec<SlidingDft>,
    /// Scored hops since the last exact re-seed (0 = refresh now).
    hops_since_refresh: usize,
    /// Scored windows this stream still sits out of calibration after a
    /// quarantine exit (hysteresis: the stream must re-warm *and* prove
    /// itself before its scores feed the adaptive threshold again).
    calib_holdoff: usize,
}

impl StreamState {
    fn new(win_len: usize, dims: usize, cv_window: usize) -> Self {
        Self {
            ring: vec![0.0; win_len * dims],
            quals: vec![DataQuality::Clean; win_len],
            head: 0,
            filled: 0,
            pushed: 0,
            since_score: 0,
            frozen_norms: None,
            last_good: vec![None; dims],
            staleness: vec![0; dims],
            consecutive_bad: 0,
            health: StreamHealth::default(),
            roll: (0..dims).map(|_| RollingStats::new(cv_window.max(1))).collect(),
            stat_ring: vec![0.0; win_len],
            sdft: (0..dims).map(|_| SlidingDft::new(win_len)).collect(),
            hops_since_refresh: 0,
            calib_holdoff: 0,
        }
    }

    /// Quarantine entry / re-warm: drop buffered data and all incremental
    /// state (LOCF imputation memory deliberately survives, as in PR 1).
    fn clear_buffer(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.since_score = 0;
        self.hops_since_refresh = 0;
        for r in self.roll.iter_mut() {
            r.reset();
        }
        for s in self.sdft.iter_mut() {
            s.reset();
        }
    }

    /// Measured heap bytes of this stream's incremental state.
    fn heap_bytes(&self) -> usize {
        self.ring.capacity() * std::mem::size_of::<f32>()
            + self.quals.capacity() * std::mem::size_of::<DataQuality>()
            + self.last_good.capacity() * std::mem::size_of::<Option<f32>>()
            + self.staleness.capacity() * std::mem::size_of::<usize>()
            + self.stat_ring.capacity() * std::mem::size_of::<f64>()
            + self.roll.iter().map(RollingStats::heap_bytes).sum::<usize>()
            + self.sdft.iter().map(SlidingDft::heap_bytes).sum::<usize>()
    }

    /// Copies the retained window into time order (oldest first).
    fn snapshot(&self, win_len: usize, dims: usize) -> Vec<f32> {
        debug_assert_eq!(self.filled, win_len);
        let mut values = Vec::with_capacity(win_len * dims);
        for i in 0..win_len {
            let slot = (self.head + i) % win_len;
            values.extend_from_slice(&self.ring[slot * dims..(slot + 1) * dims]);
        }
        values
    }
}

/// A window snapshot staged at its due tick; the forward pass is deferred to
/// [`ServingEngine::flush`] so windows from many streams share one batch.
struct PendingWindow {
    stream: usize,
    /// Normalized `[win_len, dims]` values in time order.
    values: Vec<f32>,
    mask_t: TemporalMask,
    mask_f: FrequencyMaskData,
    /// Stream index of the first reported verdict.
    base_t: u64,
    /// Number of newest positions to report (= `hop.min(win_len)`).
    newest: usize,
    /// Qualities of those newest positions, oldest first.
    qualities: Vec<DataQuality>,
    frozen: Option<(f32, f32)>,
    /// Whether this window's scores may feed calibration (false during the
    /// post-quarantine holdoff).
    calib: bool,
    /// Whether every retained sample of the window is `Clean` (reservoir
    /// eligibility for background fine-tune).
    window_clean: bool,
}

/// Interns `serve.shard<k>.<suffix>` metric names via the obs-wide intern
/// map ([`tfmae_obs::intern`]): one allocation per distinct (shard, suffix)
/// pair process-wide, however many engines are built.
fn shard_metric(shard: usize, suffix: &'static str) -> &'static str {
    tfmae_obs::intern(&format!("serve.shard{shard}.{suffix}"))
}

/// A shard-labeled counter that registers lazily (like `LazyCounter`, but
/// for an interned runtime name) and records only while observability is
/// enabled.
struct ShardCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl ShardCounter {
    fn new(name: &'static str) -> Self {
        Self { name, cell: OnceLock::new() }
    }

    fn add(&self, n: u64) {
        if tfmae_obs::enabled() {
            self.cell.get_or_init(|| tfmae_obs::global().counter(self.name)).add(n);
        }
    }
}

/// Per-shard observability: the shard dimension rolled up into the single
/// process registry as `serve.shard<k>.*` counters (the unlabeled `serve.*`
/// counters remain process totals).
struct ShardObs {
    /// Rows ingested by this shard.
    rows: ShardCounter,
    /// Windows this shard's streams staged.
    windows: ShardCounter,
    /// Forward chunks this shard executed.
    chunks: ShardCounter,
    /// Chunks claimed from another shard's queue after this shard's ran dry.
    steals: ShardCounter,
}

impl ShardObs {
    fn new(shard: usize) -> Self {
        Self {
            rows: ShardCounter::new(shard_metric(shard, "rows")),
            windows: ShardCounter::new(shard_metric(shard, "windows")),
            chunks: ShardCounter::new(shard_metric(shard, "chunks")),
            steals: ShardCounter::new(shard_metric(shard, "steals")),
        }
    }
}

/// One engine shard: the incremental masking state for its partition of
/// streams plus a private scratch executor, whose buffer pool doubles as a
/// persistent per-shard tape arena across flushes. The shared model is
/// deliberately *not* here — shards borrow it read-only during fan-out.
struct Shard {
    /// Stream slots; a slot index is the `local` half of a route entry.
    streams: Vec<StreamState>,
    /// Recycled slots of removed streams, refilled before growing.
    free: Vec<usize>,
    /// Scratch executor for this shard's forwards. Serial when the engine
    /// has > 1 shard (parallelism then lives at the shard level); the
    /// single shard of a 1-shard engine shares the detector's executor,
    /// which is exactly the pre-shard engine.
    exec: Arc<Executor>,
    obs: ShardObs,
}

impl Shard {
    fn new(shard: usize, exec: Arc<Executor>) -> Self {
        Self { streams: Vec::new(), free: Vec::new(), exec, obs: ShardObs::new(shard) }
    }

    /// Live streams on this shard (assignment load).
    fn live(&self) -> usize {
        self.streams.len() - self.free.len()
    }
}

/// What one ingested row produced on its shard; engine-level effects
/// (quarantine probation accounting, staging) are applied by the
/// coordinator in row order, so the fan-out path reproduces the serial
/// path's `AdaptiveRuntime` call sequence exactly.
enum RowOutcome {
    /// Buffered; nothing due.
    Buffered,
    /// Quarantined: immediate `Degraded` verdict. The row also counts
    /// against a fine-tune update on probation
    /// (`AdaptiveRuntime::observe_unscored_degraded`, coordinator-applied).
    Quarantined(ServingVerdict),
    /// The row completed a hop: window snapshot staged for the next flush.
    Staged(Box<PendingWindow>),
}

/// One scored observation as produced on a shard worker; the coordinator
/// merges these in chunk order (= staging order) and replays the
/// order-sensitive effects (`AdaptiveRuntime::observe`, verdict emission).
struct ScoredRow {
    stream: usize,
    t: u64,
    score: f32,
    is_anomaly: bool,
    quality: DataQuality,
    calib: bool,
}

/// A row routed to a shard during ingest fan-out:
/// (input row index, local slot, public stream id, row).
type RoutedRow<'a> = (usize, usize, usize, &'a [f32]);

/// Hands the shard fan-out disjoint `&mut` access to per-shard slots.
///
/// SAFETY contract (same as the kernel layer's `SendPtr`): the executor's
/// `parallel_for` chunk ranges partition the index space, so each index is
/// dereferenced by exactly one worker, and the call blocks until every
/// chunk completed, so no reference outlives the borrow.
struct ShardPtr<T>(*mut T);
unsafe impl<T> Send for ShardPtr<T> {}
unsafe impl<T> Sync for ShardPtr<T> {}

impl<T> ShardPtr<T> {
    /// The `i`-th slot, mutably.
    ///
    /// # Safety
    /// The caller must be the only worker touching index `i` for the
    /// lifetime of the returned reference (the `parallel_for` partition
    /// guarantees this), and `i` must be in bounds of the backing slice.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

/// Multiplexes N independent streams over one shared fitted detector,
/// batching windows that become due in the same tick (see module docs).
pub struct ServingEngine {
    det: TfmaeDetector,
    cfg: ServingConfig,
    win_len: usize,
    dims: usize,
    /// Engine shards (always ≥ 1); stream state lives here.
    shards: Vec<Shard>,
    /// Public stream id → `(shard, local slot)`; `None` after removal.
    route: Vec<Option<(usize, usize)>>,
    pending: Vec<PendingWindow>,
    /// Drift-adaptation state machine (present even when adaptation is
    /// disabled, so the calibration-anchored drift gauge still works).
    adapt: AdaptiveRuntime,
}

impl ServingEngine {
    /// Wraps a fitted detector. Streams are added with
    /// [`ServingEngine::add_stream`].
    ///
    /// # Panics
    /// Panics if the detector has not been fitted, if
    /// `cfg.hop ∉ 1..=win_len` or `cfg.refresh_every == 0`, or if
    /// `cfg.precision` cannot be applied (e.g. `F32` requested on an
    /// already-quantized detector whose f32 weights are gone).
    pub fn new(mut det: TfmaeDetector, cfg: ServingConfig) -> Self {
        let model = det.model().expect("ServingEngine requires a fitted detector");
        let win_len = det.cfg.win_len;
        let dims = model.dims();
        assert!((1..=win_len).contains(&cfg.hop), "hop must be in 1..=win_len");
        assert!(cfg.refresh_every >= 1, "refresh_every must be >= 1");
        assert!(cfg.shards >= 1, "shards must be >= 1");
        if let Err(e) = det.set_precision(cfg.precision) {
            panic!("ServingConfig::precision: {e}");
        }
        precision_gauge(det.precision());
        let adapt = AdaptiveRuntime::new(cfg.adaptation.clone(), cfg.threshold);
        let shards = (0..cfg.shards)
            .map(|k| {
                // One shard == the pre-shard engine: run on the detector's
                // executor directly (same pool, same tape arena). Multiple
                // shards each get a private serial scratch executor, and
                // the detector's pool becomes the fan-out substrate.
                let exec = if cfg.shards == 1 {
                    det.executor().clone()
                } else {
                    Arc::new(Executor::serial())
                };
                Shard::new(k, exec)
            })
            .collect();
        Self { det, cfg, win_len, dims, shards, route: Vec::new(), pending: Vec::new(), adapt }
    }

    /// Registers a new stream and returns its id. The stream lands on the
    /// least-loaded shard (lowest index on ties) and refills slots freed by
    /// [`ServingEngine::remove_stream`] first, so the fleet rebalances
    /// through register/unregister churn.
    pub fn add_stream(&mut self) -> usize {
        let sh = (0..self.shards.len())
            .min_by_key(|&k| (self.shards[k].live(), k))
            .expect("engine always has >= 1 shard");
        let state = StreamState::new(self.win_len, self.dims, self.det.cfg.cv_window);
        let shard = &mut self.shards[sh];
        let loc = match shard.free.pop() {
            Some(loc) => {
                shard.streams[loc] = state;
                loc
            }
            None => {
                shard.streams.push(state);
                shard.streams.len() - 1
            }
        };
        self.route.push(Some((sh, loc)));
        self.route.len() - 1
    }

    /// Unregisters a stream: its id is retired (never reused — subsequent
    /// rows for it are rejected, not misrouted) and its shard slot is
    /// recycled by the next [`ServingEngine::add_stream`]. Returns whether
    /// the id was live. Windows the stream already staged still score on
    /// the next flush.
    pub fn remove_stream(&mut self, stream: usize) -> bool {
        match self.route.get(stream).copied().flatten() {
            None => false,
            Some((sh, loc)) => {
                self.route[stream] = None;
                self.shards[sh].free.push(loc);
                true
            }
        }
    }

    /// Number of live (registered, not removed) streams.
    pub fn num_streams(&self) -> usize {
        self.route.iter().flatten().count()
    }

    /// Shard count (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Resolves a public stream id, panicking like the pre-shard engine did
    /// on unknown ids.
    fn slot(&self, stream: usize) -> (usize, usize) {
        self.route
            .get(stream)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("unknown stream id {stream}"))
    }

    fn state(&self, stream: usize) -> &StreamState {
        let (sh, loc) = self.slot(stream);
        &self.shards[sh].streams[loc]
    }

    fn state_mut(&mut self, stream: usize) -> &mut StreamState {
        let (sh, loc) = self.slot(stream);
        &mut self.shards[sh].streams[loc]
    }

    /// Input feature count per stream.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Model window length.
    pub fn win_len(&self) -> usize {
        self.win_len
    }

    /// The shared fitted detector.
    pub fn detector(&self) -> &TfmaeDetector {
        &self.det
    }

    /// The serving policy.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Replaces the fault-handling policy for all streams.
    pub fn set_degraded_mode(&mut self, cfg: DegradedModeConfig) {
        self.cfg.degraded = cfg;
    }

    /// Switches the engine to a serving weight precision (see
    /// [`TfmaeDetector::set_precision`]): quantizes the shared detector's
    /// 2-D weights and releases their f32 copies. Errors if the detector is
    /// already quantized at a different precision.
    pub fn set_precision(&mut self, precision: Precision) -> Result<(), String> {
        self.det.set_precision(precision)?;
        self.cfg.precision = precision;
        precision_gauge(precision);
        Ok(())
    }

    /// The serving weight precision currently applied.
    pub fn precision(&self) -> Precision {
        self.det.precision()
    }

    /// Measured resident bytes per live stream: the shared model's weight
    /// buffers (actual heap capacities, so quantization-released f32 panels
    /// count zero) plus the quantized panels, amortized over the streams,
    /// plus the mean per-stream incremental state (ring buffer, rolling
    /// stats, sliding DFT, fault bookkeeping). This is the number that
    /// decides how many streams fit on a box; activation scratch is shared
    /// and transient, so it is out of scope.
    ///
    /// Returns the model-only footprint when no stream was added yet.
    pub fn memory_bytes_per_stream(&self) -> usize {
        let model_bytes = self
            .det
            .model()
            .map(|m| m.ps.resident_bytes())
            .unwrap_or(0)
            + self.det.quant().map(QuantStore::bytes).unwrap_or(0);
        let stream_bytes: usize = self
            .route
            .iter()
            .flatten()
            .map(|&(sh, loc)| self.shards[sh].streams[loc].heap_bytes())
            .sum();
        let n = self.num_streams().max(1);
        (model_bytes + stream_bytes) / n
    }

    /// Replaces the adaptation policy, resetting the adaptation state
    /// machine (rolling window, reservoir, cadence backoff) to a fresh
    /// start at [`ServingConfig::threshold`].
    pub fn set_adaptation(&mut self, cfg: AdaptationConfig) {
        self.adapt = AdaptiveRuntime::new(cfg.clone(), self.cfg.threshold);
        self.cfg.adaptation = cfg;
    }

    /// Freezes one stream's score-normalization constants from a reference
    /// series (see [`crate::stream::StreamingDetector::calibrate`]).
    pub fn calibrate_stream(&mut self, stream: usize, series: &TimeSeries) {
        let (kl, dual) = self.det.score_components(series);
        let ma = kl.iter().sum::<f32>() / kl.len().max(1) as f32;
        let mb = dual.iter().sum::<f32>() / dual.len().max(1) as f32;
        self.state_mut(stream).frozen_norms = Some((ma, mb));
    }

    /// Drops one stream's frozen calibration constants.
    pub fn thaw_stream(&mut self, stream: usize) {
        self.state_mut(stream).frozen_norms = None;
    }

    /// Whether a stream has frozen calibration constants.
    pub fn is_calibrated(&self, stream: usize) -> bool {
        self.state(stream).frozen_norms.is_some()
    }

    /// Fault counters and current mode of one stream.
    pub fn health(&self, stream: usize) -> &StreamHealth {
        &self.state(stream).health
    }

    /// Observations pushed to one stream so far.
    pub fn stream_len(&self, stream: usize) -> u64 {
        self.state(stream).pushed
    }

    /// Whether one stream's warm-up window has filled.
    pub fn warmed_up(&self, stream: usize) -> bool {
        self.state(stream).filled >= self.win_len
    }

    /// Execution-layer counters of the shared executor.
    pub fn exec_stats(&self) -> ExecStats {
        self.det.exec_stats()
    }

    /// Windows staged and awaiting [`ServingEngine::flush`].
    pub fn pending_windows(&self) -> usize {
        self.pending.len()
    }

    /// The δ currently applied to verdicts: the adaptive threshold when
    /// adaptation is enabled, [`ServingConfig::threshold`] otherwise.
    pub fn effective_threshold(&self) -> f32 {
        if self.cfg.adaptation.enabled {
            self.adapt.threshold()
        } else {
            self.cfg.threshold
        }
    }

    /// Running counters of the adaptation loop (recalibrations, fine-tune
    /// updates, rollbacks, cadence backoff).
    pub fn adaptation_stats(&self) -> &AdaptationStats {
        self.adapt.stats()
    }

    /// Clean windows currently buffered for background fine-tuning.
    pub fn reservoir_len(&self) -> usize {
        self.adapt.reservoir_len()
    }

    /// The persistable slice of the adaptive state (current δ,
    /// recalibration count, last-good snapshot hash) — written into the
    /// checkpoint's optional adaptive section by
    /// [`TfmaeDetector::save_with_adaptive`](crate::TfmaeDetector::save_with_adaptive).
    pub fn adaptive_snapshot(&self) -> AdaptiveSnapshot {
        self.adapt.snapshot()
    }

    /// Restores a previously saved [`AdaptiveSnapshot`] (threshold,
    /// recalibration count, cadence backoff) into the adaptation loop.
    pub fn resume_adaptive(&mut self, snap: &AdaptiveSnapshot) {
        self.adapt.resume(snap);
    }

    /// Ingests one observation row for `stream` *without* scoring: fault
    /// handling runs immediately (quarantined rows return their `Degraded`
    /// verdict here), and a completed hop stages the stream's window for the
    /// next [`ServingEngine::flush`].
    ///
    /// # Panics
    /// Panics on an unregistered stream id; the non-panicking variant is
    /// [`ServingEngine::try_ingest`], and [`ServingEngine::tick`] reports
    /// typed per-row rejections.
    pub fn ingest(&mut self, stream: usize, row: &[f32]) -> Vec<ServingVerdict> {
        match self.try_ingest(stream, row) {
            Ok(v) => v,
            Err(r) => panic!("unknown stream id {}", r.stream),
        }
    }

    /// [`ServingEngine::ingest`] that rejects rows for unregistered stream
    /// ids (counted under `serve.rejected_rows`) instead of panicking.
    pub fn try_ingest(
        &mut self,
        stream: usize,
        row: &[f32],
    ) -> Result<Vec<ServingVerdict>, RowRejection> {
        let Some((sh, loc)) = self.route.get(stream).copied().flatten() else {
            return Err(reject(stream));
        };
        let (det, cfg) = (&self.det, &self.cfg);
        let (win_len, dims) = (self.win_len, self.dims);
        let shard = &mut self.shards[sh];
        shard.obs.rows.add(1);
        let outcome = ingest_row(det, cfg, win_len, dims, stream, &mut shard.streams[loc], row);
        Ok(match outcome {
            RowOutcome::Buffered => Vec::new(),
            RowOutcome::Quarantined(v) => {
                // Quarantined rows never reach the scoring path, but they
                // still count against a fine-tune update on probation.
                self.adapt.observe_unscored_degraded();
                vec![v]
            }
            RowOutcome::Staged(w) => {
                shard.obs.windows.add(1);
                self.pending.push(*w);
                Vec::new()
            }
        })
    }

    /// Scores every staged window, batching up to
    /// [`ServingConfig::max_batch`] windows — across streams — per
    /// transformer forward, and returns their verdicts in staging order.
    ///
    /// Batch composition is decided *globally* in staging order — never per
    /// shard — because the batched reduction shapes (and therefore the last
    /// float bits) depend on it; sharding and work-stealing only decide
    /// which worker executes an already-formed chunk, and per-chunk
    /// numerics are thread-invariant (the PR 2 kernel contract), so the
    /// merged verdicts are bitwise identical at any shard count.
    pub fn flush(&mut self) -> Vec<ServingVerdict> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        static FLUSH_SPAN: LazySpan = LazySpan::new("serve.flush_ns");
        static VERDICTS: LazyCounter = LazyCounter::new("serve.verdicts");
        static ANOMALIES: LazyCounter = LazyCounter::new("serve.anomalies");
        static SCORE_HIST: LazyHistogram = LazyHistogram::new("serve.score_micro");
        static SCORE_DRIFT: LazyGauge = LazyGauge::new("serve.score_drift_millis");
        let _flush_span = FLUSH_SPAN.enter();
        let mut pending = std::mem::take(&mut self.pending);
        let (t, n) = (self.win_len, self.dims);
        let max_batch = self
            .cfg
            .max_batch
            .unwrap_or_else(|| {
                if self.det.executor().threads() <= 1 {
                    1
                } else {
                    self.det.cfg.batch
                }
            })
            .max(1);
        let score_kind = self.det.cfg.score;
        let adapt_on = self.cfg.adaptation.enabled;
        // The score window also backs the drift gauge, so feed it whenever
        // either consumer is live; it never influences verdicts directly.
        let track = adapt_on || tfmae_obs::enabled();
        // No reservoir when quantized: fine-tune has no f32 weights to
        // descend on, so buffering windows for it would only waste memory.
        let reservoir_on = adapt_on
            && self.cfg.adaptation.finetune.enabled
            && self.det.quant().is_none();
        let threshold = self.effective_threshold();

        // Reservoir offers happen on the coordinator in staging order (the
        // offer ring is order-sensitive), before the chunks are handed to
        // the shard workers.
        if reservoir_on {
            for p in &pending {
                if p.calib && p.window_clean {
                    self.adapt.offer_window(p.values.clone());
                }
            }
        }

        // Chunk formation: drain `max_batch` windows at a time in staging
        // order, exactly as the single-shard engine batches.
        let mut chunks: Vec<Vec<PendingWindow>> = Vec::new();
        while !pending.is_empty() {
            let take = pending.len().min(max_batch);
            chunks.push(pending.drain(..take).collect());
        }

        let scored: Vec<Vec<ScoredRow>> = if self.shards.len() == 1 {
            // Single shard: today's serial path on the detector's executor
            // (shard 0's scratch executor aliases it).
            let g = Graph::with_executor(self.shards[0].exec.clone());
            let shard = &self.shards[0];
            chunks
                .into_iter()
                .map(|chunk| {
                    g.reset();
                    shard.obs.chunks.add(1);
                    score_chunk(&self.det, &g, chunk, t, n, score_kind, threshold)
                })
                .collect()
        } else {
            // Shard-parallel execution. Each chunk sits in a `Mutex<Option>`
            // slot: `take()` is the claim, and it transfers ownership of the
            // windows to exactly one worker. A shard first drains its own
            // queue (chunks with index ≡ shard (mod N)), then sweeps every
            // slot — work-stealing at the batched-forward-chunk level only.
            let n_chunks = chunks.len();
            let slots: Vec<Mutex<Option<Vec<PendingWindow>>>> =
                chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
            let results: Vec<Mutex<Vec<ScoredRow>>> =
                (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
            let det = &self.det;
            let shards = &self.shards;
            let nsh = shards.len();
            self.det.executor().parallel_for(nsh, 1, &|a, b| {
                for (sh, shard) in shards.iter().enumerate().take(b).skip(a) {
                    let g = Graph::with_executor(shard.exec.clone());
                    let claim = |ci: usize, stolen: bool| {
                        let Some(chunk) = slots[ci].lock().expect("chunk slot").take() else {
                            return;
                        };
                        g.reset();
                        let rows = score_chunk(det, &g, chunk, t, n, score_kind, threshold);
                        *results[ci].lock().expect("chunk result") = rows;
                        shard.obs.chunks.add(1);
                        if stolen {
                            shard.obs.steals.add(1);
                        }
                    };
                    let mut ci = sh;
                    while ci < n_chunks {
                        claim(ci, false);
                        ci += nsh;
                    }
                    for ci in 0..n_chunks {
                        claim(ci, true);
                    }
                }
            });
            results
                .into_iter()
                .map(|m| m.into_inner().expect("chunk result"))
                .collect()
        };

        // Merge on the coordinator in chunk order (= staging order): the
        // order-sensitive effects — `AdaptiveRuntime::observe` and verdict
        // emission — replay exactly as the serial engine interleaved them.
        let mut out = Vec::new();
        for rows in scored {
            for r in rows {
                SCORE_HIST.record_micro(r.score as f64);
                self.adapt.observe(r.score, r.quality, r.calib, track);
                if r.is_anomaly {
                    ANOMALIES.inc();
                }
                out.push(ServingVerdict {
                    stream: r.stream,
                    verdict: StreamVerdict {
                        t: r.t,
                        score: r.score,
                        is_anomaly: r.is_anomaly,
                        quality: r.quality,
                    },
                });
            }
        }
        VERDICTS.add(out.len() as u64);
        if adapt_on {
            self.run_adaptation();
        }
        // Drift indicator (kept under its historical name): the rolling
        // clean-score median relative to the *calibration-anchored* median,
        // in milli-units — 1000 means "at calibration", sustained growth
        // means the score distribution has drifted. The old statistic
        // divided the all-time score median by δ, which conflated threshold
        // magnitude with drift (a small δ read as permanent drift even on a
        // perfectly stationary stream).
        if tfmae_obs::enabled() {
            SCORE_DRIFT.set(self.adapt.drift_millis());
            if adapt_on {
                static ADAPT_THRESHOLD: LazyGauge = LazyGauge::new("serve.adapt_threshold_micro");
                let micro = f64::from(self.effective_threshold()) * 1e6;
                ADAPT_THRESHOLD.set(micro.clamp(0.0, 1e15) as i64);
            }
        }
        out
    }

    /// One adaptation turn, run at the end of every flush when adaptation
    /// is enabled: the probation guard band first (restoring the last-good
    /// snapshot on a harmful update), then threshold recalibration, then —
    /// outside probation — a guarded background fine-tune on the reservoir.
    fn run_adaptation(&mut self) {
        static RECALS: LazyCounter = LazyCounter::new("serve.adapt_recalibrations");
        static ROLLBACKS: LazyCounter = LazyCounter::new("serve.adapt_rollbacks");
        static TUNES: LazyCounter = LazyCounter::new("serve.adapt_finetune_updates");
        static TUNE_STEPS: LazyCounter = LazyCounter::new("serve.adapt_finetune_steps");
        if let Some(snap) = self.adapt.probation_action() {
            if let Some(model) = self.det.model_mut() {
                model.ps.restore(&snap);
            }
            ROLLBACKS.inc();
            tfmae_obs::event("serve.adapt_rollback");
        }
        if self.adapt.recalibration_due() && self.adapt.recalibrate() {
            RECALS.inc();
            tfmae_obs::event("serve.adapt_recalibrate");
        }
        if self.adapt.finetune_due() && self.det.quant().is_none() {
            let ft = self.cfg.adaptation.finetune.clone();
            let windows = self.adapt.drain_reservoir();
            if !windows.is_empty() {
                // Snapshot the pre-update weights: this is the last-good
                // state the guard band rolls back to.
                let (snap, hash) = {
                    let ps = &self.det.model().expect("checked at construction").ps;
                    (ps.snapshot(), param_hash(ps))
                };
                let salt = self.adapt.stats().finetune_updates;
                let report = self.det.finetune(&windows, &ft, salt);
                TUNES.inc();
                TUNE_STEPS.add(report.steps);
                tfmae_obs::event("serve.adapt_finetune");
                self.adapt.note_finetune(snap, hash, &report);
            }
        }
    }

    /// Single-stream convenience: ingest one row and score immediately
    /// (used by the `StreamingDetector` wrapper).
    pub fn push(&mut self, stream: usize, row: &[f32]) -> Vec<ServingVerdict> {
        let mut out = self.ingest(stream, row);
        out.extend(self.flush());
        out
    }

    /// One serving tick: ingest a row per live stream (fanned out to the
    /// engine shards when `shards > 1`), then score all windows that became
    /// due in cross-stream batches. Rows addressed to unregistered stream
    /// ids are reported as typed [`RowRejection`]s — never a panic, and
    /// never silently dropped — while the remaining rows process normally.
    pub fn tick(&mut self, rows: &[(usize, &[f32])]) -> TickReport {
        let mut report = TickReport::default();
        if self.shards.len() == 1 {
            for &(stream, row) in rows {
                match self.try_ingest(stream, row) {
                    Ok(v) => report.verdicts.extend(v),
                    Err(r) => report.rejections.push(r),
                }
            }
        } else {
            self.fan_out_ingest(rows, &mut report);
        }
        report.verdicts.extend(self.flush());
        report
    }

    /// Routes a tick's rows to their shards and ingests shard-parallel over
    /// the detector's worker pool; per-row outcomes merge back in input-row
    /// order, so the engine-level effects (quarantine probation accounting,
    /// window staging) replay exactly as the serial loop applies them.
    fn fan_out_ingest(&mut self, rows: &[(usize, &[f32])], report: &mut TickReport) {
        let nsh = self.shards.len();
        let mut grouped: Vec<Vec<RoutedRow>> = vec![Vec::new(); nsh];
        for (ri, &(stream, row)) in rows.iter().enumerate() {
            match self.route.get(stream).copied().flatten() {
                None => report.rejections.push(reject(stream)),
                Some((sh, loc)) => grouped[sh].push((ri, loc, stream, row)),
            }
        }
        let mut outs: Vec<Vec<(usize, RowOutcome)>> = (0..nsh).map(|_| Vec::new()).collect();
        {
            let det = &self.det;
            let cfg = &self.cfg;
            let (win_len, dims) = (self.win_len, self.dims);
            let grouped = &grouped;
            let shards_ptr = ShardPtr(self.shards.as_mut_ptr());
            let outs_ptr = ShardPtr(outs.as_mut_ptr());
            det.executor().parallel_for(nsh, 1, &|a, b| {
                for (sh, rows) in grouped.iter().enumerate().take(b).skip(a) {
                    // SAFETY: `parallel_for` chunk ranges partition `0..nsh`
                    // and the call blocks until every chunk ran, so each
                    // shard slot is mutated by exactly one worker (see
                    // `ShardPtr`).
                    let shard = unsafe { shards_ptr.at(sh) };
                    let out = unsafe { outs_ptr.at(sh) };
                    out.reserve(rows.len());
                    for &(ri, loc, stream, row) in rows {
                        shard.obs.rows.add(1);
                        let o = ingest_row(
                            det,
                            cfg,
                            win_len,
                            dims,
                            stream,
                            &mut shard.streams[loc],
                            row,
                        );
                        if matches!(o, RowOutcome::Staged(_)) {
                            shard.obs.windows.add(1);
                        }
                        out.push((ri, o));
                    }
                }
            });
        }
        let mut merged: Vec<(usize, RowOutcome)> = outs.into_iter().flatten().collect();
        merged.sort_by_key(|&(ri, _)| ri);
        for (_, o) in merged {
            match o {
                RowOutcome::Buffered => {}
                RowOutcome::Quarantined(v) => {
                    self.adapt.observe_unscored_degraded();
                    report.verdicts.push(v);
                }
                RowOutcome::Staged(w) => self.pending.push(*w),
            }
        }
    }
}

/// Counts and builds one typed row rejection.
fn reject(stream: usize) -> RowRejection {
    static REJECTED: LazyCounter = LazyCounter::new("serve.rejected_rows");
    REJECTED.inc();
    RowRejection { stream, reason: RejectReason::UnknownStream }
}

/// Sanitizes, buffers, and (on a completed hop) stages one row for one
/// stream. This is the per-stream half of ingestion — it touches only the
/// stream's own state plus process-wide atomic counters, so shard workers
/// run it concurrently; the engine-level half (probation accounting,
/// staging into the engine's pending queue) is applied by the coordinator
/// from the returned [`RowOutcome`].
fn ingest_row(
    det: &TfmaeDetector,
    cfg: &ServingConfig,
    win_len: usize,
    dims: usize,
    stream: usize,
    s: &mut StreamState,
    row: &[f32],
) -> RowOutcome {
    static ROWS: LazyCounter = LazyCounter::new("serve.rows");
    ROWS.inc();
    let norm = det.norm().expect("fitted detector has a normalizer");

    // Sanitize exactly as StreamingDetector::push did pre-engine.
    let (clean, quality) = if !cfg.degraded.enabled {
        assert_eq!(row.len(), dims, "row width mismatch");
        (row.to_vec(), DataQuality::Clean)
    } else {
        let width_ok = row.len() == dims;
        let mut clean = vec![0.0f32; dims];
        let mut quality = DataQuality::Clean;
        for n in 0..dims {
            let v = if width_ok { row[n] } else { f32::NAN };
            if v.is_finite() {
                s.last_good[n] = Some(v);
                s.staleness[n] = 0;
                clean[n] = v;
            } else {
                s.staleness[n] += 1;
                // Impute with the last good value; a channel that has
                // never produced one falls back to 0.0.
                clean[n] = s.last_good[n].unwrap_or(0.0);
                let q = if s.last_good[n].is_some()
                    && s.staleness[n] <= cfg.degraded.staleness_budget
                {
                    DataQuality::Imputed
                } else {
                    DataQuality::Degraded
                };
                quality = quality.max(q);
            }
        }

        if quality == DataQuality::Clean {
            s.consecutive_bad = 0;
            if s.health.mode == StreamMode::Quarantine {
                // Clean data ends quarantine; re-warm from empty. The
                // stream additionally sits out `holdoff` scored windows
                // before its scores re-enter calibration (see
                // `crate::adapt`).
                s.health.mode = StreamMode::Normal;
                s.calib_holdoff = cfg.adaptation.holdoff;
                static QUARANTINE_EXITS: LazyCounter =
                    LazyCounter::new("serve.quarantine_exits");
                QUARANTINE_EXITS.inc();
                tfmae_obs::event("serve.quarantine_exit");
            }
        } else {
            s.consecutive_bad += 1;
            if s.health.mode == StreamMode::Normal
                && s.consecutive_bad >= cfg.degraded.quarantine_after
            {
                s.health.mode = StreamMode::Quarantine;
                s.health.quarantine_entries += 1;
                static QUARANTINE_ENTRIES: LazyCounter =
                    LazyCounter::new("serve.quarantine_entries");
                QUARANTINE_ENTRIES.inc();
                tfmae_obs::event("serve.quarantine_enter");
                s.clear_buffer();
            }
        }

        if s.health.mode == StreamMode::Quarantine {
            s.health.quarantined_rows += 1;
            static QUARANTINED_ROWS: LazyCounter = LazyCounter::new("serve.quarantined_rows");
            QUARANTINED_ROWS.inc();
            s.pushed += 1;
            return RowOutcome::Quarantined(ServingVerdict {
                stream,
                verdict: StreamVerdict {
                    t: s.pushed - 1,
                    score: 0.0,
                    is_anomaly: false,
                    quality: DataQuality::Degraded,
                },
            });
        }
        (clean, quality)
    };

    // Buffer the sanitized row: normalize, write into the ring, advance
    // the incremental accumulators.
    let temporal_kind = det.cfg.temporal_mask;
    let incremental = cfg.incremental;
    static IMPUTED_ROWS: LazyCounter = LazyCounter::new("serve.imputed_rows");
    static DEGRADED_ROWS: LazyCounter = LazyCounter::new("serve.degraded_rows");
    match quality {
        DataQuality::Clean => {}
        DataQuality::Imputed => {
            s.health.imputed_rows += 1;
            IMPUTED_ROWS.inc();
        }
        DataQuality::Degraded => {
            s.health.degraded_rows += 1;
            DEGRADED_ROWS.inc();
        }
    }
    let slot = s.head;
    let mut normed = Vec::with_capacity(dims);
    for n in 0..dims {
        normed.push((clean[n] - norm.mean[n]) / norm.std[n]);
    }
    if incremental {
        // Slide the spectra before the evicted sample is overwritten.
        if s.filled == win_len && s.sdft[0].is_warm() {
            for n in 0..dims {
                s.sdft[n].slide(s.ring[slot * dims + n] as f64, normed[n] as f64);
            }
        }
        for n in 0..dims {
            s.roll[n].push(normed[n] as f64);
        }
        // Trailing statistic ending at this sample; meaningful once the
        // rolling window holds `cv_window` real samples, which covers
        // every window position whose trailing sub-sequence needs it.
        s.stat_ring[slot] = match temporal_kind {
            TemporalMaskKind::Cv => s.roll.iter().map(|r| r.cv()).sum(),
            TemporalMaskKind::Std => s.roll.iter().map(|r| r.var().sqrt()).sum(),
            TemporalMaskKind::Random | TemporalMaskKind::None => 0.0,
        };
    }
    s.ring[slot * dims..(slot + 1) * dims].copy_from_slice(&normed);
    s.quals[slot] = quality;
    s.head = (s.head + 1) % win_len;
    if s.filled < win_len {
        s.filled += 1;
    }
    s.pushed += 1;
    s.since_score += 1;

    if s.filled < win_len || s.since_score < cfg.hop {
        return RowOutcome::Buffered;
    }
    s.since_score = 0;

    // Hop complete: snapshot the window, compute its masks from the
    // incremental state, and stage it for the next flush.
    let values = s.snapshot(win_len, dims);
    let newest = cfg.hop.min(win_len);
    let qualities: Vec<DataQuality> = (0..newest)
        .map(|i| s.quals[(s.head + win_len - newest + i) % win_len])
        .collect();
    let base_t = s.pushed - newest as u64;
    let frozen = s.frozen_norms;
    // Calibration eligibility: a stream fresh out of quarantine sits
    // out `holdoff` scored windows; reservoir eligibility additionally
    // requires every retained sample to be Clean.
    let calib = if s.calib_holdoff > 0 {
        s.calib_holdoff -= 1;
        false
    } else {
        true
    };
    let window_clean = s.quals.iter().all(|&q| q == DataQuality::Clean);

    let mut rng = StdRng::seed_from_u64(det.cfg.seed ^ 0x5c0e);
    let (mask_t, mask_f) = if !incremental {
        // From-scratch baseline: the exact batch masking path per hop.
        let model = det.model().expect("checked at construction");
        model.window_masks(&values, &mut rng)
    } else {
        let refresh =
            s.hops_since_refresh == 0 || s.hops_since_refresh >= cfg.refresh_every;
        if refresh {
            static SDFT_REFRESHES: LazyCounter = LazyCounter::new("serve.sdft_refreshes");
            SDFT_REFRESHES.inc();
        }
        let masks = incremental_masks(&det.cfg, s, &values, dims, refresh, &mut rng);
        s.hops_since_refresh = if refresh { 1 } else { s.hops_since_refresh + 1 };
        masks
    };

    static WINDOWS: LazyCounter = LazyCounter::new("serve.windows");
    WINDOWS.inc();
    RowOutcome::Staged(Box::new(PendingWindow {
        stream,
        values,
        mask_t,
        mask_f,
        base_t,
        newest,
        qualities,
        frozen,
        calib,
        window_clean,
    }))
}

/// Runs one already-formed chunk through the shared model on graph `g` and
/// returns its scored rows. Touches nothing order-sensitive: every output
/// is a pure function of the chunk, the read-only detector, and the
/// pre-read threshold, so any worker may execute any chunk. The per-chunk
/// numerics are thread-invariant (PR 2 kernel contract), which is what
/// makes work-stealing verdict-neutral.
fn score_chunk(
    det: &TfmaeDetector,
    g: &Graph,
    chunk: Vec<PendingWindow>,
    t: usize,
    n: usize,
    score_kind: ScoreKind,
    threshold: f32,
) -> Vec<ScoredRow> {
    let model = det.model().expect("checked at construction");
    let b = chunk.len();
    static BATCHES: LazyCounter = LazyCounter::new("serve.batches");
    static BATCH_WINDOWS: LazyHistogram = LazyHistogram::new("serve.batch_windows");
    // Temporal tokens attended per scored window (win_len/patch_len):
    // makes the patch-tokenization reduction visible in /metrics next
    // to `serve.windows` (tokens/windows = T/P).
    static PATCH_TOKENS: LazyCounter = LazyCounter::new("serve.patch_tokens");
    BATCHES.inc();
    BATCH_WINDOWS.record(b as u64);
    PATCH_TOKENS.add((b * det.cfg.num_patch_tokens()) as u64);
    let mut values = Vec::with_capacity(b * t * n);
    let mut masks_t = Vec::with_capacity(b);
    let mut masks_f = Vec::with_capacity(b);
    let mut meta = Vec::with_capacity(b);
    for p in chunk {
        values.extend_from_slice(&p.values);
        masks_t.push(p.mask_t);
        masks_f.push(p.mask_f);
        meta.push((p.stream, p.base_t, p.newest, p.qualities, p.frozen, p.calib));
    }
    let batch = crate::model::BatchInputs { values, b, masks_t, masks_f };
    let ctx = match det.quant() {
        Some(q) => Ctx::eval_quant(g, &model.ps, q),
        None => Ctx::eval(g, &model.ps),
    };
    let fwd = model.forward(&ctx, &batch);
    let (kl, dual) = model.anomaly_score_components(&ctx, &fwd);
    let mut out = Vec::new();
    for (wi, (stream, base_t, newest, qualities, frozen, calib)) in meta.into_iter().enumerate() {
        let klw = &kl[wi * t..(wi + 1) * t];
        let dualw = &dual[wi * t..(wi + 1) * t];
        // Frozen calibration constants put scores on the offline
        // scale; the fallback normalizes window-locally (exactly the
        // pre-engine StreamingDetector behavior).
        let scores: Vec<f32> = match (frozen, score_kind) {
            (Some((ma, mb)), ScoreKind::Combined) => klw
                .iter()
                .zip(dualw.iter())
                .map(|(x, y)| x / (ma + 1e-12) + y / (mb + 1e-12))
                .collect(),
            _ => combine_scores(score_kind, klw, dualw),
        };
        for i in 0..newest {
            let mut score = scores[t - newest + i];
            let mut quality = qualities[i];
            if !score.is_finite() {
                // Last line of defense: never emit a non-finite score.
                score = 0.0;
                quality = DataQuality::Degraded;
            }
            let is_anomaly = score >= threshold && quality != DataQuality::Degraded;
            out.push(ScoredRow {
                stream,
                t: base_t + i as u64,
                score,
                is_anomaly,
                quality,
                calib,
            });
        }
    }
    out
}

/// Publishes the serving precision as bits per weight scalar (32/16/8):
/// cheap to read off a dashboard and unambiguous across the three modes.
fn precision_gauge(precision: Precision) {
    static PRECISION: LazyGauge = LazyGauge::new("serve.precision");
    PRECISION.set(match precision {
        Precision::F32 => 32,
        Precision::Bf16 => 16,
        Precision::Int8 => 8,
    });
}

/// Computes one window's masks from the stream's incremental state. On a
/// `refresh` hop, both the statistic and the spectra are re-derived through
/// the exact batch path (which also re-seeds the recurrences); otherwise the
/// stat ring and the sliding-DFT spectra are consumed as-is.
fn incremental_masks(
    cfg: &TfmaeConfig,
    s: &mut StreamState,
    values: &[f32],
    dims: usize,
    refresh: bool,
    rng: &mut StdRng,
) -> (TemporalMask, FrequencyMaskData) {
    let win_len = cfg.win_len;
    let w = cfg.cv_window;
    let i_t = cfg.masked_tokens();

    let mask_t = match cfg.temporal_mask {
        TemporalMaskKind::Cv | TemporalMaskKind::Std => {
            let stat: Vec<f64> = if refresh {
                if cfg.temporal_mask == TemporalMaskKind::Cv {
                    cv_statistic(values, win_len, dims, w, cfg.use_fft_cv)
                } else {
                    std_statistic(values, win_len, dims, w, cfg.use_fft_cv)
                }
            } else {
                (0..win_len)
                    .map(|t| {
                        if t + 1 >= w {
                            // Trailing window fully inside: the rolling value
                            // recorded when this sample arrived.
                            s.stat_ring[(s.head + t) % win_len]
                        } else {
                            // Head positions edge-pad with the window's first
                            // row, which changes every hop — compute directly.
                            head_stat(values, dims, w, t, cfg.temporal_mask)
                        }
                    })
                    .collect()
            };
            // The incremental per-row statistic (ring + rolling stats)
            // stays at row resolution regardless of patch_len; only the
            // selection step folds it to patch tokens, exactly like the
            // batch path — so at patch_len = 1 this line is the legacy
            // selection bit for bit, and at patch_len > 1 the sliding
            // state machinery needs no patch awareness at all.
            temporal_mask_from_stat(&fold_stat_to_patches(&stat, cfg.patch_len), i_t)
        }
        // Random consumes the rng; None masks nothing. Neither reads the
        // incremental statistic.
        TemporalMaskKind::Random | TemporalMaskKind::None => temporal_mask_patched(
            values,
            win_len,
            dims,
            cfg.patch_len,
            i_t,
            w,
            cfg.temporal_mask,
            cfg.use_fft_cv,
            rng,
        ),
    };

    if refresh {
        // Exact re-seed: init IS a fresh rfft of the retained window, so the
        // masks (and the verdicts built on them) match the batch path
        // bitwise on refresh hops.
        for n in 0..dims {
            let ch: Vec<f64> = (0..win_len).map(|t| values[t * dims + n] as f64).collect();
            s.sdft[n].init(&ch);
        }
        for r in s.roll.iter_mut() {
            r.refresh();
        }
    }
    let spectra: Vec<Vec<Complex64>> =
        s.sdft.iter().map(|d| d.spectrum().to_vec()).collect();
    let mask_f =
        frequency_mask_from_spectra(&spectra, win_len, cfg.masked_freq_bins(), cfg.freq_mask, rng);
    (mask_t, mask_f)
}

/// Direct trailing statistic for a head position `t < w − 1` of one window,
/// edge-padding with the window's first row — the same definition as
/// `sliding_cv_naive`/`sliding_var_naive` applied to the window.
fn head_stat(values: &[f32], dims: usize, w: usize, t: usize, kind: TemporalMaskKind) -> f64 {
    let mut total = 0.0;
    for n in 0..dims {
        let at = |idx: isize| -> f64 {
            if idx < 0 {
                values[n] as f64
            } else {
                values[idx as usize * dims + n] as f64
            }
        };
        let mut sum = 0.0;
        for k in 0..w {
            sum += at(t as isize - k as isize);
        }
        let mu = sum / w as f64;
        let mut acc = 0.0;
        for k in 0..w {
            let d = at(t as isize - k as isize) - mu;
            acc += d * d;
        }
        let var = acc / w as f64;
        total += match kind {
            TemporalMaskKind::Cv => var / (mu.abs() + CV_EPS),
            TemporalMaskKind::Std => var.max(0.0).sqrt(),
            TemporalMaskKind::Random | TemporalMaskKind::None => 0.0,
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tfmae_data::{render, Component, Detector};

    fn series(len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let ch = render(
            &[
                Component::Sine { period: 16.0, amp: 1.0, phase: 0.0 },
                Component::Noise { sigma: 0.05 },
            ],
            len,
            &mut rng,
        );
        TimeSeries::from_channels(&[ch])
    }

    fn fitted() -> TfmaeDetector {
        let train = series(512, 1);
        let mut det =
            TfmaeDetector::new(crate::config::TfmaeConfig { epochs: 4, ..crate::config::TfmaeConfig::tiny() });
        det.fit(&train, &train);
        det
    }

    fn replicate(det: &TfmaeDetector) -> TfmaeDetector {
        TfmaeDetector::from_checkpoint(det.to_checkpoint().expect("fitted"))
            .expect("roundtrip")
    }

    #[test]
    fn multi_stream_batched_matches_solo_streams() {
        let det = fitted();
        let win = det.cfg.win_len;
        let n_streams = 3;
        // Solo reference: one single-stream engine per stream.
        let mut solo: Vec<Vec<ServingVerdict>> = Vec::new();
        for sid in 0..n_streams {
            let mut eng = ServingEngine::new(replicate(&det), ServingConfig::new(f32::MAX, 4));
            eng.add_stream();
            let data = series(win + 16, 100 + sid as u64);
            let mut got = Vec::new();
            for t in 0..data.len() {
                got.extend(eng.push(0, data.row(t)));
            }
            solo.push(got);
        }
        // Batched: one engine, all streams ticked together. Force real
        // multi-window chunks — the auto default would pick batch-of-one on
        // the single-thread test executor, and this test exists to prove
        // B > 1 scoring is bitwise identical to solo.
        let mut cfg = ServingConfig::new(f32::MAX, 4);
        cfg.max_batch = Some(det.cfg.batch);
        let mut eng = ServingEngine::new(det, cfg);
        let ids: Vec<usize> = (0..n_streams).map(|_| eng.add_stream()).collect();
        let datas: Vec<TimeSeries> =
            (0..n_streams).map(|sid| series(win + 16, 100 + sid as u64)).collect();
        let mut batched: Vec<Vec<ServingVerdict>> = vec![Vec::new(); n_streams];
        for t in 0..win + 16 {
            let rows: Vec<(usize, &[f32])> =
                ids.iter().map(|&id| (id, datas[id].row(t))).collect();
            let report = eng.tick(&rows);
            assert!(report.rejections.is_empty());
            for v in report.verdicts {
                batched[v.stream].push(v);
            }
        }
        for sid in 0..n_streams {
            assert_eq!(solo[sid].len(), batched[sid].len(), "stream {sid}");
            for (a, b) in solo[sid].iter().zip(batched[sid].iter()) {
                assert_eq!(a.verdict.t, b.verdict.t);
                assert_eq!(a.verdict.quality, b.verdict.quality);
                // Batch-of-N and batch-of-1 forwards may differ in the last
                // bits (blocked-matmul path selection depends on B·T).
                assert!(
                    (a.verdict.score - b.verdict.score).abs() < 1e-4,
                    "stream {sid} t={}: {} vs {}",
                    a.verdict.t,
                    a.verdict.score,
                    b.verdict.score
                );
            }
        }
    }

    #[test]
    fn tick_coalesces_due_windows_into_batches() {
        let det = fitted();
        let win = det.cfg.win_len;
        let mut cfg = ServingConfig::new(f32::MAX, win);
        cfg.max_batch = Some(det.cfg.batch);
        let mut eng = ServingEngine::new(det, cfg);
        let ids: Vec<usize> = (0..5).map(|_| eng.add_stream()).collect();
        let datas: Vec<TimeSeries> = (0..5).map(|sid| series(win, 50 + sid as u64)).collect();
        // Ingest only: all five windows become due on the last tick.
        for t in 0..win {
            for &id in &ids {
                let none = eng.ingest(id, datas[id].row(t));
                assert!(none.is_empty());
            }
        }
        assert_eq!(eng.pending_windows(), 5);
        let verdicts = eng.flush();
        assert_eq!(eng.pending_windows(), 0);
        assert_eq!(verdicts.len(), 5 * win);
        for &id in &ids {
            assert_eq!(verdicts.iter().filter(|v| v.stream == id).count(), win);
        }
    }

    #[test]
    fn from_scratch_mode_matches_incremental_on_refresh_hop() {
        // Exactly one hop fires (hop = win_len, win_len rows): the first
        // score after warm-up is a refresh hop, where the incremental path
        // re-seeds through the exact batch path and must match bitwise.
        let det = fitted();
        let win = det.cfg.win_len;
        let data = series(win, 7);
        let run = |det: TfmaeDetector, incremental: bool| {
            let mut cfg = ServingConfig::new(f32::MAX, win);
            cfg.incremental = incremental;
            let mut eng = ServingEngine::new(det, cfg);
            eng.add_stream();
            let mut out = Vec::new();
            for t in 0..win {
                out.extend(eng.push(0, data.row(t)));
            }
            out
        };
        let inc = run(replicate(&det), true);
        let scratch = run(det, false);
        assert_eq!(inc.len(), scratch.len());
        for (a, b) in inc.iter().zip(scratch.iter()) {
            assert_eq!(a.verdict.score, b.verdict.score, "refresh hop must be bitwise");
        }
    }

    #[test]
    fn unknown_stream_id_panics() {
        let det = fitted();
        let mut eng = ServingEngine::new(det, ServingConfig::new(0.0, 1));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng.ingest(0, &[1.0]);
        }));
        assert!(r.is_err(), "ingest to an unregistered stream must panic");
    }

    #[test]
    fn tick_rejects_unknown_stream_rows_and_keeps_scoring_the_rest() {
        // The fleet-facing tick surface must not panic (or silently drop
        // rows) over one bad stream id: the bad row comes back as a typed
        // rejection and every other row processes normally.
        let det = fitted();
        let win = det.cfg.win_len;
        let mut eng = ServingEngine::new(det, ServingConfig::new(f32::MAX, win));
        let id = eng.add_stream();
        let data = series(win, 9);
        let (mut verdicts, mut rejections) = (0usize, 0usize);
        for t in 0..win {
            let row = data.row(t);
            let report = eng.tick(&[(id, row), (id + 7, row)]);
            for r in &report.rejections {
                assert_eq!(*r, RowRejection { stream: id + 7, reason: RejectReason::UnknownStream });
            }
            rejections += report.rejections.len();
            verdicts += report.verdicts.len();
        }
        assert_eq!(rejections, win, "one typed rejection per bad row");
        assert_eq!(verdicts, win, "the registered stream still scores");
        assert_eq!(eng.stream_len(id), win as u64);
    }

    #[test]
    fn removed_streams_reject_and_their_slots_are_recycled() {
        let det = fitted();
        let win = det.cfg.win_len;
        let mut cfg = ServingConfig::new(f32::MAX, win);
        cfg.shards = 2;
        let mut eng = ServingEngine::new(det, cfg);
        let a = eng.add_stream();
        let b = eng.add_stream();
        assert_eq!(eng.num_streams(), 2);
        assert!(eng.remove_stream(a));
        assert!(!eng.remove_stream(a), "double-remove reports not-live");
        assert_eq!(eng.num_streams(), 1);
        // A removed id is retired, not recycled: rows for it are rejected.
        let row = vec![0.0f32; eng.dims()];
        assert!(eng.try_ingest(a, &row).is_err());
        // The freed shard slot is reused by the next registration; the old
        // id keeps rejecting while the new stream scores end to end.
        let c = eng.add_stream();
        assert_ne!(a, c);
        assert_eq!(eng.num_streams(), 2);
        let data = series(win, 11);
        let mut verdicts = 0usize;
        for t in 0..win {
            let rows: Vec<(usize, &[f32])> = vec![(b, data.row(t)), (c, data.row(t))];
            let report = eng.tick(&rows);
            assert!(report.rejections.is_empty());
            verdicts += report.verdicts.len();
        }
        assert_eq!(verdicts, 2 * win);
    }

    #[test]
    fn bf16_memory_per_stream_is_under_the_0_6x_gate_at_s8() {
        // The PR's serving-memory acceptance criterion: at S = 8, a bf16
        // engine holds ≤ 0.6x the resident bytes per stream of the f32
        // engine (in practice ~0.25x-0.3x: data + grad → one u16 panel).
        let det = fitted();
        let at = |precision: Precision| {
            let mut cfg = ServingConfig::new(f32::MAX, 4);
            cfg.precision = precision;
            let mut eng = ServingEngine::new(replicate(&det), cfg);
            for _ in 0..8 {
                eng.add_stream();
            }
            eng.memory_bytes_per_stream()
        };
        let f32_bytes = at(Precision::F32);
        let bf16_bytes = at(Precision::Bf16);
        let int8_bytes = at(Precision::Int8);
        assert!(f32_bytes > 0);
        assert!(
            (bf16_bytes as f64) <= 0.6 * f32_bytes as f64,
            "bf16 {bf16_bytes} B/stream vs f32 {f32_bytes} B/stream"
        );
        assert!(
            int8_bytes < bf16_bytes,
            "int8 {int8_bytes} B/stream must undercut bf16 {bf16_bytes} B/stream"
        );
    }
}
