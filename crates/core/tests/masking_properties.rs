//! Property-based tests for the two masking strategies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tfmae_core::{frequency_mask, temporal_mask, FreqMaskKind, TemporalMaskKind};
use tfmae_fft::{irfft, rfft, rfft_len, Complex64};

fn window(len: usize, dims: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, len * dims)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn temporal_mask_partitions_indices(
        vals in window(40, 2),
        i_t in 0usize..39,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in [TemporalMaskKind::Cv, TemporalMaskKind::Std, TemporalMaskKind::Random, TemporalMaskKind::None] {
            let m = temporal_mask(&vals, 40, 2, i_t, 10, kind, true, &mut rng);
            let mut all: Vec<usize> = m.masked.iter().chain(m.unmasked.iter()).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..40).collect::<Vec<_>>());
            if kind != TemporalMaskKind::None {
                prop_assert_eq!(m.masked.len(), i_t.min(39));
            }
            // Sorted ascending (the model relies on it for PE lookup).
            prop_assert!(m.masked.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(m.unmasked.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cv_fft_and_loop_paths_pick_same_mask(
        vals in window(64, 1),
        i_t in 1usize..30,
    ) {
        let mut r1 = StdRng::seed_from_u64(0);
        let mut r2 = StdRng::seed_from_u64(0);
        let a = temporal_mask(&vals, 64, 1, i_t, 10, TemporalMaskKind::Cv, true, &mut r1);
        let b = temporal_mask(&vals, 64, 1, i_t, 10, TemporalMaskKind::Cv, false, &mut r2);
        // Allow tie-induced differences of at most one index.
        let overlap = a.masked.iter().filter(|i| b.masked.contains(i)).count();
        prop_assert!(overlap + 1 >= a.masked.len(), "{:?} vs {:?}", a.masked, b.masked);
    }

    #[test]
    fn frequency_mask_base_never_contains_masked_energy(
        vals in window(48, 1),
        i_f in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(3);
        let data = frequency_mask(&vals, 48, 1, i_f, FreqMaskKind::Amplitude, &mut rng);
        // rFFT of base must be (near) zero at every masked bin.
        let base64: Vec<f64> = (0..48).map(|t| data.base[t] as f64).collect();
        let spec = rfft(&base64);
        for &i in &data.masked_bins[0] {
            prop_assert!(spec[i].abs() < 1e-3, "bin {i} retains {:?}", spec[i]);
        }
    }

    #[test]
    fn frequency_linearity_holds_for_random_m(
        vals in window(40, 1),
        re in -3.0f32..3.0,
        im in -3.0f32..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(4);
        let data = frequency_mask(&vals, 40, 1, 8, FreqMaskKind::Amplitude, &mut rng);
        // Direct: write m into the masked bins and invert.
        let ch: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        let mut spec = rfft(&ch);
        for &i in &data.masked_bins[0] {
            spec[i] = Complex64::new(re as f64, im as f64);
        }
        let direct = irfft(&spec, 40);
        for t in 0..40 {
            let fast = data.base[t] + re * data.a[t] + im * data.b[t];
            prop_assert!((direct[t] as f32 - fast).abs() < 1e-3,
                "t={t}: {} vs {fast}", direct[t]);
        }
    }

    #[test]
    fn mask_kinds_mask_expected_bin_counts(vals in window(32, 3), i_f in 0usize..15) {
        let mut rng = StdRng::seed_from_u64(5);
        for kind in [FreqMaskKind::Amplitude, FreqMaskKind::HighFreq, FreqMaskKind::Random] {
            let data = frequency_mask(&vals, 32, 3, i_f, kind, &mut rng);
            for bins in &data.masked_bins {
                prop_assert_eq!(bins.len(), i_f.min(rfft_len(32) - 1));
                prop_assert!(bins.windows(2).all(|w| w[0] < w[1]), "sorted");
                prop_assert!(bins.iter().all(|&b| b < rfft_len(32)));
            }
        }
    }
}
