//! Parity suite for the multi-stream serving engine.
//!
//! Three contracts, in increasing strictness:
//!
//! 1. **Incremental ≈ from-scratch** — with `incremental: true` the masks
//!    come from rolling statistics and a sliding DFT that are exactly
//!    re-seeded every `refresh_every` hops; verdict scores must stay within
//!    1e-5 of the from-scratch baseline *between* refreshes and match it
//!    bitwise *on* refresh hops.
//! 2. **Wrapper = engine** — `StreamingDetector` is a thin wrapper over a
//!    single-stream `ServingEngine`; verdicts must be bitwise identical,
//!    including under NaN storms and quarantine.
//! 3. **Batched ≈ solo** — N streams ticked through one engine must agree
//!    with N independent single-stream engines (scores within 1e-4; the
//!    batch-of-N forward may pick different blocked-matmul paths than
//!    batch-of-1).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tfmae_core::{
    AdaptationConfig, DataQuality, DegradedModeConfig, FinetuneConfig, Precision, RowRejection,
    ServingConfig, ServingEngine, ServingVerdict, StreamVerdict, StreamingDetector, TfmaeConfig,
    TfmaeDetector,
};
use tfmae_data::{render, Component, Detector, TimeSeries};

fn series(len: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let ch = render(
        &[
            Component::Sine { period: 16.0, amp: 1.0, phase: 0.0 },
            Component::Trend { slope: 0.002 },
            Component::Noise { sigma: 0.05 },
        ],
        len,
        &mut rng,
    );
    TimeSeries::from_channels(&[ch])
}

fn fitted() -> TfmaeDetector {
    let train = series(512, 1);
    let mut det = TfmaeDetector::new(TfmaeConfig { epochs: 4, ..TfmaeConfig::tiny() });
    det.fit(&train, &train);
    det
}

fn replicate(det: &TfmaeDetector) -> TfmaeDetector {
    TfmaeDetector::from_checkpoint(det.to_checkpoint().expect("fitted")).expect("roundtrip")
}

/// Runs one single-stream engine over `data`, returning flat verdicts.
fn run_engine(det: TfmaeDetector, cfg: ServingConfig, data: &TimeSeries) -> Vec<StreamVerdict> {
    let mut eng = ServingEngine::new(det, cfg);
    eng.add_stream();
    let mut out = Vec::new();
    for t in 0..data.len() {
        out.extend(eng.push(0, data.row(t)).into_iter().map(|v| v.verdict));
    }
    out
}

#[test]
fn incremental_tracks_from_scratch_within_1e5_across_refresh_cadence() {
    let det = fitted();
    let win = det.cfg.win_len;
    // Long run: many hops, refresh every 4 scored hops so the suite
    // exercises refresh hops AND maximum-drift hops (3 slides deep).
    let data = series(win + 40, 42);
    let mut inc_cfg = ServingConfig::new(f32::MAX, 2);
    inc_cfg.refresh_every = 4;
    let mut scratch_cfg = inc_cfg.clone();
    scratch_cfg.incremental = false;

    let inc = run_engine(replicate(&det), inc_cfg, &data);
    let scratch = run_engine(det, scratch_cfg, &data);

    assert_eq!(inc.len(), scratch.len());
    assert!(inc.len() >= 20, "run must cover many hops, got {}", inc.len());
    for (a, b) in inc.iter().zip(scratch.iter()) {
        assert_eq!(a.t, b.t);
        assert_eq!(a.quality, b.quality);
        assert!(
            (a.score - b.score).abs() <= 1e-5,
            "t={}: incremental {} vs from-scratch {} drifted past 1e-5",
            a.t,
            a.score,
            b.score
        );
    }
}

#[test]
fn refresh_hops_are_bitwise_identical_to_from_scratch() {
    let det = fitted();
    let win = det.cfg.win_len;
    let hop = 4;
    let refresh_every = 3;
    let data = series(win + hop * refresh_every * 3, 43);
    let mut inc_cfg = ServingConfig::new(f32::MAX, hop);
    inc_cfg.refresh_every = refresh_every;
    let mut scratch_cfg = inc_cfg.clone();
    scratch_cfg.incremental = false;

    let inc = run_engine(replicate(&det), inc_cfg, &data);
    let scratch = run_engine(det, scratch_cfg, &data);
    assert_eq!(inc.len(), scratch.len());

    // Hop k (0-based) is a refresh hop iff k % refresh_every == 0 (the
    // counter starts at 0 after warm-up and resets on each refresh).
    let mut bitwise_hops = 0;
    for (k, (av, bv)) in inc.chunks(hop).zip(scratch.chunks(hop)).enumerate() {
        if k % refresh_every == 0 {
            for (a, b) in av.iter().zip(bv.iter()) {
                assert_eq!(
                    a.score, b.score,
                    "refresh hop {k} t={} must be bitwise identical",
                    a.t
                );
            }
            bitwise_hops += 1;
        }
    }
    assert!(bitwise_hops >= 3, "suite must cover several refresh hops");
}

#[test]
fn refresh_every_one_is_always_bitwise() {
    // refresh_every = 1 degenerates to the exact path every hop: the
    // incremental engine must equal from-scratch bitwise everywhere.
    let det = fitted();
    let win = det.cfg.win_len;
    let data = series(win + 24, 44);
    let mut inc_cfg = ServingConfig::new(f32::MAX, 3);
    inc_cfg.refresh_every = 1;
    let mut scratch_cfg = inc_cfg.clone();
    scratch_cfg.incremental = false;

    let inc = run_engine(replicate(&det), inc_cfg, &data);
    let scratch = run_engine(det, scratch_cfg, &data);
    assert_eq!(inc.len(), scratch.len());
    assert!(!inc.is_empty());
    for (a, b) in inc.iter().zip(scratch.iter()) {
        assert_eq!(a.score, b.score, "t={}", a.t);
    }
}

fn fitted_patched(patch_len: usize) -> TfmaeDetector {
    let train = series(512, 1);
    let mut det =
        TfmaeDetector::new(TfmaeConfig { epochs: 4, patch_len, ..TfmaeConfig::tiny() });
    det.fit(&train, &train);
    det
}

#[test]
fn patched_incremental_tracks_from_scratch() {
    // Same contract as the unpatched suite, at P = 4: rolling statistics
    // stay at row resolution and are folded to patch tokens only at mask
    // selection, so the incremental path must match from-scratch bitwise on
    // refresh hops and within 1e-5 between them.
    let det = fitted_patched(4);
    let win = det.cfg.win_len;
    let data = series(win + 40, 142);
    let mut inc_cfg = ServingConfig::new(f32::MAX, 2);
    inc_cfg.refresh_every = 4;
    let mut scratch_cfg = inc_cfg.clone();
    scratch_cfg.incremental = false;

    let inc = run_engine(replicate(&det), inc_cfg, &data);
    let scratch = run_engine(det, scratch_cfg, &data);
    assert_eq!(inc.len(), scratch.len());
    assert!(inc.len() >= 20);
    for (a, b) in inc.iter().zip(scratch.iter()) {
        assert_eq!(a.t, b.t);
        assert!(
            (a.score - b.score).abs() <= 1e-5,
            "t={}: patched incremental {} vs from-scratch {}",
            a.t,
            a.score,
            b.score
        );
    }
}

#[test]
fn patched_refresh_every_one_is_always_bitwise() {
    let det = fitted_patched(4);
    let win = det.cfg.win_len;
    let data = series(win + 24, 143);
    let mut inc_cfg = ServingConfig::new(f32::MAX, 3);
    inc_cfg.refresh_every = 1;
    let mut scratch_cfg = inc_cfg.clone();
    scratch_cfg.incremental = false;

    let inc = run_engine(replicate(&det), inc_cfg, &data);
    let scratch = run_engine(det, scratch_cfg, &data);
    assert_eq!(inc.len(), scratch.len());
    assert!(!inc.is_empty());
    for (a, b) in inc.iter().zip(scratch.iter()) {
        assert_eq!(a.score, b.score, "t={}", a.t);
    }
}

#[test]
fn patched_batched_multi_stream_agrees_with_solo() {
    let det = fitted_patched(4);
    let win = det.cfg.win_len;
    let n_streams = 4;
    let len = win * 2 + 12;
    let datas: Vec<TimeSeries> =
        (0..n_streams).map(|sid| series(len, 300 + sid as u64)).collect();

    let mut solo: Vec<Vec<StreamVerdict>> = Vec::new();
    for data in &datas {
        solo.push(run_engine(replicate(&det), ServingConfig::new(f32::MAX, 3), data));
    }

    let mut cfg = ServingConfig::new(f32::MAX, 3);
    cfg.max_batch = Some(det.cfg.batch);
    let mut eng = ServingEngine::new(det, cfg);
    let ids: Vec<usize> = (0..n_streams).map(|_| eng.add_stream()).collect();
    let mut batched: Vec<Vec<StreamVerdict>> = vec![Vec::new(); n_streams];
    for t in 0..len {
        let rows: Vec<(usize, &[f32])> =
            ids.iter().map(|&id| (id, datas[id].row(t))).collect();
        for v in eng.tick(&rows).verdicts {
            batched[v.stream].push(v.verdict);
        }
    }

    for sid in 0..n_streams {
        assert_eq!(solo[sid].len(), batched[sid].len(), "stream {sid}");
        assert!(!solo[sid].is_empty());
        for (a, b) in solo[sid].iter().zip(batched[sid].iter()) {
            assert_eq!(a.t, b.t);
            assert!(
                (a.score - b.score).abs() < 1e-4,
                "stream {sid} t={}: batched {} vs solo {}",
                a.t,
                b.score,
                a.score
            );
        }
    }
}

#[test]
fn patched_checkpoint_roundtrip_preserves_serving_verdicts() {
    // `replicate` goes through the v2 envelope, which at P > 1 carries the
    // CRC-covered patch section; the restored engine must serve identical
    // verdict bits.
    let det = fitted_patched(8);
    let win = det.cfg.win_len;
    let data = series(win * 2 + 8, 144);
    let cfg = ServingConfig::new(f32::MAX, 4);

    let restored = replicate(&det);
    assert_eq!(restored.cfg.patch_len, 8);
    let original = run_engine(det, cfg.clone(), &data);
    let roundtripped = run_engine(restored, cfg, &data);
    assert_eq!(original.len(), roundtripped.len());
    assert!(!original.is_empty());
    for (a, b) in original.iter().zip(roundtripped.iter()) {
        assert_eq!(a, b, "checkpoint roundtrip must preserve patched verdict bits");
    }
}

#[test]
fn wrapper_is_bitwise_identical_to_single_stream_engine() {
    let det = fitted();
    let win = det.cfg.win_len;
    let data = series(win * 2 + 8, 45);

    let mut wrapper = StreamingDetector::new(replicate(&det), f32::MAX, 4);
    let from_wrapper = wrapper.push_many(&data);
    let from_engine = run_engine(det, ServingConfig::new(f32::MAX, 4), &data);

    assert_eq!(from_wrapper.len(), from_engine.len());
    assert!(!from_wrapper.is_empty());
    for (a, b) in from_wrapper.iter().zip(from_engine.iter()) {
        assert_eq!(a, b, "wrapper and engine verdicts must be bitwise identical");
    }
}

#[test]
fn wrapper_engine_parity_survives_faults_and_quarantine() {
    let det = fitted();
    let win = det.cfg.win_len;
    let data = series(win * 3, 46);
    // Scripted fault storm: scattered NaNs, then a dead feed long enough to
    // trip quarantine (default quarantine_after = 16), then recovery.
    let faulty_row = |t: usize| -> Option<Vec<f32>> {
        if t >= win && t < win + win / 2 && t % 7 == 0 {
            Some(vec![f32::NAN])
        } else if t >= win * 2 && t < win * 2 + 20 {
            Some(vec![f32::NAN])
        } else {
            None
        }
    };

    let mut wrapper = StreamingDetector::new(replicate(&det), f32::MAX, 2);
    let mut eng = ServingEngine::new(det, ServingConfig::new(f32::MAX, 2));
    eng.add_stream();

    let mut from_wrapper = Vec::new();
    let mut from_engine = Vec::new();
    for t in 0..data.len() {
        let row = faulty_row(t).unwrap_or_else(|| data.row(t).to_vec());
        from_wrapper.extend(wrapper.push(&row));
        from_engine.extend(eng.push(0, &row).into_iter().map(|v| v.verdict));
    }

    assert_eq!(from_wrapper.len(), from_engine.len());
    for (a, b) in from_wrapper.iter().zip(from_engine.iter()) {
        assert_eq!(a, b);
    }
    // The storm actually exercised the fault machinery on both sides.
    assert!(from_wrapper.iter().any(|v| v.quality == DataQuality::Imputed));
    assert!(from_wrapper.iter().any(|v| v.quality == DataQuality::Degraded));
    assert_eq!(wrapper.health(), eng.health(0));
    assert_eq!(wrapper.health().quarantine_entries, 1);
}

#[test]
fn batched_multi_stream_agrees_with_solo_over_long_run() {
    let det = fitted();
    let win = det.cfg.win_len;
    let n_streams = 4;
    let len = win * 2 + 12;
    let datas: Vec<TimeSeries> =
        (0..n_streams).map(|sid| series(len, 200 + sid as u64)).collect();

    let mut solo: Vec<Vec<StreamVerdict>> = Vec::new();
    for data in &datas {
        solo.push(run_engine(replicate(&det), ServingConfig::new(f32::MAX, 3), data));
    }

    // Force real multi-window chunks: the auto default picks batch-of-one
    // on the single-thread test executor, but this test is about B > 1
    // cross-stream batches matching solo runs bitwise.
    let mut cfg = ServingConfig::new(f32::MAX, 3);
    cfg.max_batch = Some(det.cfg.batch);
    let mut eng = ServingEngine::new(det, cfg);
    let ids: Vec<usize> = (0..n_streams).map(|_| eng.add_stream()).collect();
    let mut batched: Vec<Vec<StreamVerdict>> = vec![Vec::new(); n_streams];
    for t in 0..len {
        let rows: Vec<(usize, &[f32])> =
            ids.iter().map(|&id| (id, datas[id].row(t))).collect();
        for v in eng.tick(&rows).verdicts {
            batched[v.stream].push(v.verdict);
        }
    }

    for sid in 0..n_streams {
        assert_eq!(solo[sid].len(), batched[sid].len(), "stream {sid}");
        assert!(!solo[sid].is_empty());
        for (a, b) in solo[sid].iter().zip(batched[sid].iter()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.quality, b.quality);
            assert!(
                (a.score - b.score).abs() < 1e-4,
                "stream {sid} t={}: batched {} vs solo {}",
                a.t,
                b.score,
                a.score
            );
        }
    }
}

#[test]
fn verdicts_are_bitwise_identical_with_observability_on_and_off() {
    // The observability layer must be a pure observer: turning the global
    // registry on changes no verdict bit. (Toggling the switch here is safe
    // alongside the other tests in this binary — recording never feeds back
    // into scoring, which is exactly what this test proves.)
    let det = fitted();
    let win = det.cfg.win_len;
    let data = series(win * 2 + 10, 49);
    let cfg = ServingConfig::new(f32::MAX, 3);

    tfmae_obs::set_enabled(true);
    let with_obs = run_engine(replicate(&det), cfg.clone(), &data);
    let rows_recorded = tfmae_obs::global()
        .instruments()
        .iter()
        .any(|(name, inst)| {
            *name == "serve.rows"
                && matches!(inst, tfmae_obs::Instrument::Counter(c) if c.get() > 0)
        });
    tfmae_obs::set_enabled(false);
    let without_obs = run_engine(det, cfg, &data);

    assert!(rows_recorded, "enabled run must have recorded serve.rows");
    assert_eq!(with_obs.len(), without_obs.len());
    assert!(!with_obs.is_empty());
    for (a, b) in with_obs.iter().zip(without_obs.iter()) {
        assert_eq!(a, b, "metrics on/off must not change any verdict bit");
    }
}

#[test]
fn adaptation_disabled_is_bitwise_identical_to_the_frozen_engine() {
    // The drift-adaptation plumbing (calibration holdoff bookkeeping, score
    // window feeds, probation accounting) rides along every ingest/flush.
    // With `adaptation.enabled == false` — the default — none of it may
    // change a single verdict bit, even through a quarantine cycle. An
    // *enabled* config that never gets to recalibrate must also match: δ
    // only moves on an applied recalibration.
    let det = fitted();
    let win = det.cfg.win_len;
    let data = series(win * 3, 50);
    // NaN storm deep enough to quarantine (budget 0, threshold 8), then
    // recovery — exercises the post-quarantine holdoff path.
    let faulty_row = |t: usize| -> Option<Vec<f32>> {
        (t >= win && t < win + 12).then(|| vec![f32::NAN])
    };
    let run = |det: TfmaeDetector, adaptation: AdaptationConfig| -> Vec<StreamVerdict> {
        let mut cfg = ServingConfig::new(f32::MAX, 2);
        cfg.degraded =
            DegradedModeConfig { staleness_budget: 0, quarantine_after: 8, ..Default::default() };
        cfg.adaptation = adaptation;
        let mut eng = ServingEngine::new(det, cfg);
        let id = eng.add_stream();
        let mut out = Vec::new();
        for t in 0..data.len() {
            let row = faulty_row(t).unwrap_or_else(|| data.row(t).to_vec());
            out.extend(eng.push(id, &row).into_iter().map(|v| v.verdict));
        }
        out
    };

    let frozen = run(replicate(&det), AdaptationConfig::default());
    assert!(frozen.iter().any(|v| v.quality == DataQuality::Degraded), "storm must bite");

    // Disabled, but with every knob moved off its default.
    let knobs = AdaptationConfig {
        holdoff: 9,
        min_samples: 4,
        window: 32,
        recalibrate_every: 8,
        finetune: FinetuneConfig { enabled: true, ..FinetuneConfig::default() },
        ..AdaptationConfig::default()
    };
    let with_knobs = run(replicate(&det), knobs);

    // Enabled but inert: cadence/min-samples out of reach, so δ never moves.
    let inert = AdaptationConfig {
        recalibrate_every: usize::MAX,
        min_samples: usize::MAX,
        ..AdaptationConfig::enabled()
    };
    let enabled_inert = run(det, inert);

    assert_eq!(frozen.len(), with_knobs.len());
    assert_eq!(frozen.len(), enabled_inert.len());
    assert!(!frozen.is_empty());
    for ((a, b), c) in frozen.iter().zip(with_knobs.iter()).zip(enabled_inert.iter()) {
        assert_eq!(a, b, "disabled adaptation must not change verdict bits");
        assert_eq!(a, c, "inert enabled adaptation must not change verdict bits");
    }
}

#[test]
fn post_quarantine_holdoff_keeps_scores_out_of_calibration() {
    // Quarantine → recovery → recalibration hysteresis: a stream that exits
    // quarantine must re-warm (win_len rows) AND serve out `holdoff` scored
    // windows before its scores feed the adaptive calibration window again.
    let det = fitted();
    let win = det.cfg.win_len;
    let hop = 4;
    let holdoff = 4;
    let mut cfg = ServingConfig::new(f32::MAX, hop);
    cfg.degraded =
        DegradedModeConfig { staleness_budget: 0, quarantine_after: 8, ..Default::default() };
    let mut ad = AdaptationConfig::enabled();
    ad.holdoff = holdoff;
    cfg.adaptation = ad;
    let mut eng = ServingEngine::new(det, cfg);
    let id = eng.add_stream();
    let data = series(win * 2, 51);

    // Clean serving: scores flow into calibration.
    for t in 0..data.len() {
        eng.push(id, data.row(t));
    }
    let before_storm = eng.adaptation_stats().clean_scores;
    assert!(before_storm > 0, "clean run must have fed the calibration window");

    // Dead feed: Degraded rows (budget 0), quarantine after 8.
    for _ in 0..16 {
        eng.push(id, &[f32::NAN]);
    }
    assert_eq!(eng.health(id).quarantine_entries, 1);
    assert_eq!(
        eng.adaptation_stats().clean_scores,
        before_storm,
        "degraded and quarantined rows must never feed calibration"
    );

    // Recovery. Re-warm takes win_len rows (first window fires at row
    // win_len), then windows fire every `hop` rows; the first `holdoff`
    // windows are calibration-ineligible.
    let held_rows = win + holdoff * hop - hop;
    for t in 0..held_rows {
        eng.push(id, data.row(t % data.len()));
    }
    assert_eq!(eng.health(id).mode, tfmae_core::StreamMode::Normal);
    assert_eq!(
        eng.adaptation_stats().clean_scores,
        before_storm,
        "holdoff windows must stay out of calibration"
    );

    // The next window is past the holdoff: its `hop` clean verdicts re-enter.
    for t in held_rows..held_rows + hop {
        eng.push(id, data.row(t % data.len()));
    }
    assert_eq!(
        eng.adaptation_stats().clean_scores,
        before_storm + hop as u64,
        "post-holdoff clean scores must re-enter calibration"
    );
}

#[test]
fn enabled_adaptation_recalibrates_delta_from_serving_scores() {
    // End-to-end Eq. 17 recalibration: δ starts far above the serving-score
    // scale and must walk down — at most `max_step` per recalibration.
    let det = fitted();
    let win = det.cfg.win_len;
    let mut cfg = ServingConfig::new(1000.0, 2);
    let mut ad = AdaptationConfig::enabled();
    ad.min_samples = 32;
    ad.recalibrate_every = 32;
    ad.window = 128;
    cfg.adaptation = ad;
    let mut eng = ServingEngine::new(det, cfg);
    let id = eng.add_stream();
    let data = series(win + 128, 52);
    for t in 0..data.len() {
        eng.push(id, data.row(t));
    }
    let stats = eng.adaptation_stats().clone();
    assert!(stats.recalibrations >= 2, "run must recalibrate: {stats:?}");
    let delta = eng.effective_threshold();
    assert!(delta < 1000.0, "δ must walk toward the score scale, got {delta}");
    let floor = 1000.0 * 0.5f32.powi(stats.recalibrations.min(127) as i32);
    assert!(
        delta >= floor - 1e-3,
        "each recalibration moves δ at most max_step: {delta} vs floor {floor}"
    );
}

#[test]
fn calibrated_stream_parity_between_engine_and_wrapper() {
    let det = fitted();
    let win = det.cfg.win_len;
    let val = series(160, 47);
    let data = series(win * 2, 48);

    let mut wrapper = StreamingDetector::new(replicate(&det), f32::MAX, 2);
    wrapper.calibrate(&val);
    let from_wrapper = wrapper.push_many(&data);

    let mut eng = ServingEngine::new(det, ServingConfig::new(f32::MAX, 2));
    let id = eng.add_stream();
    eng.calibrate_stream(id, &val);
    let mut from_engine = Vec::new();
    for t in 0..data.len() {
        from_engine.extend(eng.push(id, data.row(t)).into_iter().map(|v| v.verdict));
    }

    assert_eq!(from_wrapper.len(), from_engine.len());
    assert!(!from_wrapper.is_empty());
    for (a, b) in from_wrapper.iter().zip(from_engine.iter()) {
        assert_eq!(a, b);
    }
}

// --------------------------------------------------------------- sharding
//
// Contract 4: **shard count is invisible in the output.** The engine forms
// forward batches globally in staging order and merges scored rows back on
// the coordinator, so the full verdict trace — order, stream tags, and
// every score bit — must be identical at shards = 1/2/4 across the whole
// battery: plain batched serving, quarantine storms, frozen calibration,
// enabled adaptation, patch tokenization, and quantized precision.

/// Replays per-stream data through one engine at a given shard count,
/// returning the full ordered (verdicts, rejections) trace plus the final
/// effective threshold. `fault` may replace a (stream, t) row; `include`
/// gates which streams participate in a tick (irregular interleaves).
#[allow(clippy::too_many_arguments)]
fn sharded_trace(
    det: TfmaeDetector,
    mut cfg: ServingConfig,
    shards: usize,
    datas: &[TimeSeries],
    calibrate: Option<&TimeSeries>,
    fault: &dyn Fn(usize, usize) -> Option<Vec<f32>>,
    include: &dyn Fn(usize, usize) -> bool,
    extra_rows: &dyn Fn(usize) -> Vec<(usize, Vec<f32>)>,
) -> (Vec<ServingVerdict>, Vec<RowRejection>, f32) {
    cfg.shards = shards;
    let mut eng = ServingEngine::new(det, cfg);
    let ids: Vec<usize> = datas.iter().map(|_| eng.add_stream()).collect();
    if let Some(val) = calibrate {
        for &id in &ids {
            eng.calibrate_stream(id, val);
        }
    }
    let len = datas[0].len();
    let mut verdicts = Vec::new();
    let mut rejections = Vec::new();
    for t in 0..len {
        let mut owned: Vec<(usize, Vec<f32>)> = Vec::new();
        for (sid, &id) in ids.iter().enumerate() {
            if include(sid, t) {
                owned.push((id, fault(sid, t).unwrap_or_else(|| datas[sid].row(t).to_vec())));
            }
        }
        owned.extend(extra_rows(t));
        let rows: Vec<(usize, &[f32])> = owned.iter().map(|(id, r)| (*id, r.as_slice())).collect();
        let report = eng.tick(&rows);
        verdicts.extend(report.verdicts);
        rejections.extend(report.rejections);
    }
    (verdicts, rejections, eng.effective_threshold())
}

/// Asserts bitwise-identical traces at shards = 1/2/4 and returns the
/// shards = 1 reference trace.
fn assert_shard_invariant(
    det: &TfmaeDetector,
    cfg: &ServingConfig,
    datas: &[TimeSeries],
    calibrate: Option<&TimeSeries>,
    fault: &dyn Fn(usize, usize) -> Option<Vec<f32>>,
    include: &dyn Fn(usize, usize) -> bool,
    extra_rows: &dyn Fn(usize) -> Vec<(usize, Vec<f32>)>,
) -> Vec<ServingVerdict> {
    let (base_v, base_r, base_thr) =
        sharded_trace(replicate(det), cfg.clone(), 1, datas, calibrate, fault, include, extra_rows);
    assert!(!base_v.is_empty(), "battery run must produce verdicts");
    for shards in [2usize, 4] {
        let (v, r, thr) = sharded_trace(
            replicate(det),
            cfg.clone(),
            shards,
            datas,
            calibrate,
            fault,
            include,
            extra_rows,
        );
        assert_eq!(base_v.len(), v.len(), "verdict count at shards={shards}");
        for (i, (a, b)) in base_v.iter().zip(v.iter()).enumerate() {
            assert_eq!(a, b, "verdict #{i} differs at shards={shards}");
        }
        assert_eq!(base_r, r, "rejection trace at shards={shards}");
        assert_eq!(
            base_thr.to_bits(),
            thr.to_bits(),
            "effective threshold at shards={shards}"
        );
    }
    base_v
}

const ALL: &dyn Fn(usize, usize) -> bool = &|_, _| true;
const NO_FAULT: &dyn Fn(usize, usize) -> Option<Vec<f32>> = &|_, _| None;
const NO_EXTRA: &dyn Fn(usize) -> Vec<(usize, Vec<f32>)> = &|_| Vec::new();

#[test]
fn shard_count_is_verdict_invariant_for_batched_multi_stream_serving() {
    let det = fitted();
    let win = det.cfg.win_len;
    let datas: Vec<TimeSeries> =
        (0..5).map(|sid| series(win * 2 + 12, 400 + sid as u64)).collect();
    let mut cfg = ServingConfig::new(f32::MAX, 3);
    // Real multi-window chunks: chunk composition, not just solo windows,
    // must be shard-count independent.
    cfg.max_batch = Some(det.cfg.batch);
    assert_shard_invariant(&det, &cfg, &datas, None, NO_FAULT, ALL, NO_EXTRA);
}

#[test]
fn shard_count_invariance_survives_faults_and_quarantine() {
    let det = fitted();
    let win = det.cfg.win_len;
    let datas: Vec<TimeSeries> = (0..4).map(|sid| series(win * 3, 410 + sid as u64)).collect();
    let mut cfg = ServingConfig::new(f32::MAX, 2);
    cfg.degraded =
        DegradedModeConfig { staleness_budget: 0, quarantine_after: 8, ..Default::default() };
    cfg.max_batch = Some(det.cfg.batch);
    // NaN storm on streams 1 and 3, deep enough to quarantine and recover;
    // quarantine verdicts are emitted at ingest time, so this also pins the
    // fan-out's row-order merge.
    let fault = |sid: usize, t: usize| -> Option<Vec<f32>> {
        (sid % 2 == 1 && t >= win && t < win + 12).then(|| vec![f32::NAN])
    };
    let got = assert_shard_invariant(&det, &cfg, &datas, None, &fault, ALL, NO_EXTRA);
    assert!(
        got.iter().any(|v| v.verdict.quality == DataQuality::Degraded),
        "storm must bite for the battery to mean anything"
    );
}

#[test]
fn shard_count_invariance_with_frozen_calibration() {
    let det = fitted();
    let win = det.cfg.win_len;
    let val = series(160, 47);
    let datas: Vec<TimeSeries> =
        (0..4).map(|sid| series(win * 2, 420 + sid as u64)).collect();
    let mut cfg = ServingConfig::new(f32::MAX, 2);
    cfg.max_batch = Some(det.cfg.batch);
    assert_shard_invariant(&det, &cfg, &datas, Some(&val), NO_FAULT, ALL, NO_EXTRA);
}

#[test]
fn shard_count_invariance_with_adaptation_enabled() {
    // Adaptation is the most order-sensitive consumer (score-window
    // generations rotate on observation count; δ moves on recalibration),
    // so a shard-order bug shows up here first. The final δ must match to
    // the bit as well.
    let det = fitted();
    let win = det.cfg.win_len;
    let datas: Vec<TimeSeries> =
        (0..3).map(|sid| series(win + 128, 430 + sid as u64)).collect();
    let mut cfg = ServingConfig::new(1000.0, 2);
    cfg.max_batch = Some(det.cfg.batch);
    let mut ad = AdaptationConfig::enabled();
    ad.min_samples = 32;
    ad.recalibrate_every = 32;
    ad.window = 128;
    cfg.adaptation = ad;
    let (_, _, thr) = sharded_trace(
        replicate(&det),
        { let mut c = cfg.clone(); c.shards = 1; c },
        1,
        &datas,
        None,
        NO_FAULT,
        ALL,
        NO_EXTRA,
    );
    assert!(thr < 1000.0, "run must actually recalibrate for this test to bite");
    assert_shard_invariant(&det, &cfg, &datas, None, NO_FAULT, ALL, NO_EXTRA);
}

#[test]
fn shard_count_invariance_with_patch_tokens() {
    let det = fitted_patched(4);
    let win = det.cfg.win_len;
    let datas: Vec<TimeSeries> =
        (0..4).map(|sid| series(win * 2 + 12, 440 + sid as u64)).collect();
    let mut cfg = ServingConfig::new(f32::MAX, 3);
    cfg.max_batch = Some(det.cfg.batch);
    assert_shard_invariant(&det, &cfg, &datas, None, NO_FAULT, ALL, NO_EXTRA);
}

#[test]
fn shard_count_invariance_with_quantized_precision() {
    let det = fitted();
    let win = det.cfg.win_len;
    let datas: Vec<TimeSeries> =
        (0..4).map(|sid| series(win * 2, 450 + sid as u64)).collect();
    let mut cfg = ServingConfig::new(f32::MAX, 3);
    cfg.max_batch = Some(det.cfg.batch);
    cfg.precision = Precision::Bf16;
    assert_shard_invariant(&det, &cfg, &datas, None, NO_FAULT, ALL, NO_EXTRA);
}

#[test]
fn interleaved_ingest_ordering_is_deterministic_across_shard_counts() {
    // Irregular multi-stream interleave: streams drop in and out per tick
    // (so hops complete on different ticks per stream) and every third tick
    // carries a row for an unregistered id. The verdict trace AND the typed
    // rejection trace must be identical at every shard count.
    let det = fitted();
    let win = det.cfg.win_len;
    let dims = 1usize;
    let datas: Vec<TimeSeries> =
        (0..5).map(|sid| series(win * 2 + 30, 460 + sid as u64)).collect();
    let mut cfg = ServingConfig::new(f32::MAX, 2);
    cfg.max_batch = Some(det.cfg.batch);
    let include = |sid: usize, t: usize| -> bool { (t + sid) % (sid + 2) != 0 };
    let extra = move |t: usize| -> Vec<(usize, Vec<f32>)> {
        if t % 3 == 0 {
            vec![(999, vec![0.5f32; dims])]
        } else {
            Vec::new()
        }
    };
    let (base_v, base_r, _) = sharded_trace(
        replicate(&det),
        { let mut c = cfg.clone(); c.shards = 1; c },
        1,
        &datas,
        None,
        NO_FAULT,
        &include,
        &extra,
    );
    assert!(!base_v.is_empty());
    assert!(!base_r.is_empty(), "unknown-id rows must be rejected, not dropped");
    assert_shard_invariant(&det, &cfg, &datas, None, NO_FAULT, &include, &extra);
}
