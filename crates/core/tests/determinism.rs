//! Execution-layer determinism: training and scoring must be **bitwise**
//! identical at any worker count, and the pooled tape must stop allocating
//! once warm.
//!
//! The parallel kernels shard work by output row — each row is computed
//! entirely by one worker with the exact serial per-row code — so thread
//! count can change scheduling but never a single bit of any result. These
//! tests pin that contract end-to-end through `TfmaeDetector`. Worker
//! counts are injected via [`TfmaeDetector::set_executor`] (the programmatic
//! equivalent of setting the `TFMAE_THREADS` environment variable, which
//! `Executor::from_env` reads at construction).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tfmae_core::{TfmaeConfig, TfmaeDetector};
use tfmae_data::{render, Component, Detector, TimeSeries};
use tfmae_tensor::Executor;

fn series(len: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = render(
        &[Component::Sine { period: 16.0, amp: 1.0, phase: 0.0 }, Component::Noise { sigma: 0.05 }],
        len,
        &mut rng,
    );
    let b = render(
        &[Component::Sine { period: 8.0, amp: 0.5, phase: 1.0 }, Component::Noise { sigma: 0.05 }],
        len,
        &mut rng,
    );
    TimeSeries::from_channels(&[a, b])
}

fn fit_and_score(threads: usize) -> (Vec<f32>, Vec<f32>, TfmaeDetector) {
    let train = series(256, 1);
    let val = series(64, 2);
    let test = series(96, 3);
    let mut det = TfmaeDetector::new(TfmaeConfig { epochs: 2, ..TfmaeConfig::tiny() });
    det.set_executor(Arc::new(if threads <= 1 {
        Executor::serial()
    } else {
        Executor::with_threads(threads)
    }));
    det.fit(&train, &val);
    let losses = det.loss_curve.clone();
    let scores = det.score(&test);
    (losses, scores, det)
}

#[test]
fn training_losses_bitwise_identical_across_thread_counts() {
    let (serial_losses, serial_scores, _) = fit_and_score(1);
    assert!(!serial_losses.is_empty());
    for threads in [2usize, 4] {
        let (losses, scores, _) = fit_and_score(threads);
        let exact = |a: &[f32], b: &[f32]| {
            a.len() == b.len()
                && a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        assert!(
            exact(&serial_losses, &losses),
            "loss trajectory diverged from serial at {threads} threads"
        );
        assert!(
            exact(&serial_scores, &scores),
            "anomaly scores diverged from serial at {threads} threads"
        );
    }
}

#[test]
fn pool_warmup_eliminates_per_step_allocations() {
    // Train once (several steps over several epochs): after the first
    // step has populated the buffer pool, every later tape rebuild must be
    // served entirely from it. A second fit on the same detector runs with
    // an already-warm pool, so its steps contribute hits but no misses.
    let train = series(256, 4);
    let val = series(64, 5);
    let mut det = TfmaeDetector::new(TfmaeConfig { epochs: 2, ..TfmaeConfig::tiny() });
    det.fit(&train, &val);
    let warm = det.exec_stats();
    assert!(warm.pool_hits > 0, "pooled training must reuse buffers: {warm:?}");
    assert!(warm.bytes_recycled > 0);

    det.fit(&train, &val);
    let after = det.exec_stats();
    assert_eq!(
        after.pool_misses, warm.pool_misses,
        "a warm pool must serve every allocation (zero new misses)"
    );
    assert!(after.pool_hits > warm.pool_hits);
}

#[test]
fn scoring_reuses_the_training_arena() {
    let train = series(256, 6);
    let val = series(64, 7);
    let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
    det.fit(&train, &val);
    let fitted = det.exec_stats();
    // Scoring the same shapes twice: the second pass must be miss-free.
    let test = series(96, 8);
    det.score(&test);
    let once = det.exec_stats();
    det.score(&test);
    let twice = det.exec_stats();
    assert_eq!(
        twice.pool_misses, once.pool_misses,
        "repeat scoring must not allocate: {fitted:?} -> {once:?} -> {twice:?}"
    );
}

#[test]
fn train_report_carries_exec_stats() {
    let train = series(256, 9);
    let val = series(64, 10);
    let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
    det.set_executor(Arc::new(Executor::with_threads(2)));
    det.fit(&train, &val);
    let exec = det.train_report.exec;
    assert_eq!(exec.threads, 2);
    assert!(exec.tasks_dispatched > 0);
    assert!(exec.pool_hits > 0);
    assert!(exec.peak_arena_bytes > 0);
}
