//! Execution-layer determinism: training and scoring must be **bitwise**
//! identical at any worker count, and the pooled tape must stop allocating
//! once warm.
//!
//! The parallel kernels shard work by output row — each row is computed
//! entirely by one worker with the exact serial per-row code — so thread
//! count can change scheduling but never a single bit of any result. These
//! tests pin that contract end-to-end through `TfmaeDetector`. Worker
//! counts are injected via [`TfmaeDetector::set_executor`] (the programmatic
//! equivalent of setting the `TFMAE_THREADS` environment variable, which
//! `Executor::from_env` reads at construction).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tfmae_core::{TfmaeConfig, TfmaeDetector};
use tfmae_data::{render, Component, Detector, TimeSeries};
use tfmae_tensor::Executor;

fn series(len: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = render(
        &[Component::Sine { period: 16.0, amp: 1.0, phase: 0.0 }, Component::Noise { sigma: 0.05 }],
        len,
        &mut rng,
    );
    let b = render(
        &[Component::Sine { period: 8.0, amp: 0.5, phase: 1.0 }, Component::Noise { sigma: 0.05 }],
        len,
        &mut rng,
    );
    TimeSeries::from_channels(&[a, b])
}

fn fit_and_score(threads: usize) -> (Vec<f32>, Vec<f32>, TfmaeDetector) {
    let train = series(256, 1);
    let val = series(64, 2);
    let test = series(96, 3);
    let mut det = TfmaeDetector::new(TfmaeConfig { epochs: 2, ..TfmaeConfig::tiny() });
    det.set_executor(Arc::new(if threads <= 1 {
        Executor::serial()
    } else {
        Executor::with_threads(threads)
    }));
    det.fit(&train, &val);
    let losses = det.loss_curve.clone();
    let scores = det.score(&test);
    (losses, scores, det)
}

#[test]
fn training_losses_bitwise_identical_across_thread_counts() {
    let (serial_losses, serial_scores, _) = fit_and_score(1);
    assert!(!serial_losses.is_empty());
    for threads in [2usize, 4] {
        let (losses, scores, _) = fit_and_score(threads);
        let exact = |a: &[f32], b: &[f32]| {
            a.len() == b.len()
                && a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        assert!(
            exact(&serial_losses, &losses),
            "loss trajectory diverged from serial at {threads} threads"
        );
        assert!(
            exact(&serial_scores, &scores),
            "anomaly scores diverged from serial at {threads} threads"
        );
    }
}

#[test]
fn pool_warmup_eliminates_per_step_allocations() {
    // Train once (several steps over several epochs): after the first
    // step has populated the buffer pool, every later tape rebuild must be
    // served entirely from it. A second fit on the same detector runs with
    // an already-warm pool, so its steps contribute hits but no misses.
    let train = series(256, 4);
    let val = series(64, 5);
    let mut det = TfmaeDetector::new(TfmaeConfig { epochs: 2, ..TfmaeConfig::tiny() });
    det.fit(&train, &val);
    let warm = det.exec_stats();
    assert!(warm.pool_hits > 0, "pooled training must reuse buffers: {warm:?}");
    assert!(warm.bytes_recycled > 0);

    det.fit(&train, &val);
    let after = det.exec_stats();
    assert_eq!(
        after.pool_misses, warm.pool_misses,
        "a warm pool must serve every allocation (zero new misses)"
    );
    assert!(after.pool_hits > warm.pool_hits);
}

#[test]
fn scoring_reuses_the_training_arena() {
    let train = series(256, 6);
    let val = series(64, 7);
    let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
    det.fit(&train, &val);
    let fitted = det.exec_stats();
    // Scoring the same shapes twice: the second pass must be miss-free.
    let test = series(96, 8);
    det.score(&test);
    let once = det.exec_stats();
    det.score(&test);
    let twice = det.exec_stats();
    assert_eq!(
        twice.pool_misses, once.pool_misses,
        "repeat scoring must not allocate: {fitted:?} -> {once:?} -> {twice:?}"
    );
}

#[test]
fn legacy_config_json_fit_is_bitwise_identical_to_explicit_patch_len_one() {
    // A config serialized before the patch-tokenization refactor has no
    // `patch_len` field; loading it and fitting must reproduce an explicit
    // `patch_len = 1` run bit for bit (losses and scores).
    let explicit = TfmaeConfig { epochs: 2, ..TfmaeConfig::tiny() };
    assert_eq!(explicit.patch_len, 1);
    let json = serde_json::to_string(&explicit)
        .expect("serialize")
        .replace(",\"patch_len\":1", "")
        .replace("\"patch_len\":1,", "");
    assert!(!json.contains("patch_len"), "field must be stripped: {json}");
    let legacy: TfmaeConfig = serde_json::from_str(&json).expect("legacy JSON must parse");
    let legacy = legacy.normalized();
    assert_eq!(legacy.patch_len, 1);

    let train = series(256, 11);
    let val = series(64, 12);
    let test = series(96, 13);
    let run = |cfg: TfmaeConfig| -> (Vec<f32>, Vec<f32>) {
        let mut det = TfmaeDetector::new(cfg);
        det.fit(&train, &val);
        let scores = det.score(&test);
        (det.loss_curve.clone(), scores)
    };
    let (l_explicit, s_explicit) = run(explicit);
    let (l_legacy, s_legacy) = run(legacy);
    let exact =
        |a: &[f32], b: &[f32]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(!l_explicit.is_empty() && l_explicit.len() == l_legacy.len());
    assert!(exact(&l_explicit, &l_legacy), "loss trajectories must be bitwise identical");
    assert!(exact(&s_explicit, &s_legacy), "scores must be bitwise identical");
}

#[test]
fn patch_len_one_keeps_the_legacy_parameter_layout() {
    // The PatchEmbed pieces are registered in their historical positions so
    // that both the RNG draw sequence and the checkpoint parameter layout
    // are unchanged at P = 1 — and identical (up to proj/recon shapes) at
    // any P. Pin the interleaved order at both ends of the store.
    let cfg = TfmaeConfig::tiny();
    let n = 2;
    let legacy = tfmae_core::TfmaeModel::new(cfg.clone(), n);
    let names: Vec<&str> = legacy.ps.params().iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        &names[..7],
        &[
            "temporal.proj.w",
            "temporal.proj.b",
            "frequency.proj.w",
            "frequency.proj.b",
            "temporal.mask_token",
            "frequency.m_re",
            "frequency.m_im",
        ],
        "head of the parameter layout changed"
    );
    assert_eq!(
        &names[names.len() - 4..],
        &["temporal.recon.w", "temporal.recon.b", "frequency.recon.w", "frequency.recon.b"],
        "tail of the parameter layout changed"
    );
    let shape_of = |name: &str| {
        legacy.ps.params().iter().find(|p| p.name == name).expect(name).shape.clone()
    };
    assert_eq!(shape_of("temporal.proj.w"), vec![n, cfg.d_model]);
    assert_eq!(shape_of("temporal.recon.w"), vec![cfg.d_model, n]);

    // A patched model keeps the exact same names in the exact same order —
    // only the patch projection/reconstruction shapes widen to P·N.
    let p = 4;
    let patched =
        tfmae_core::TfmaeModel::new(TfmaeConfig { patch_len: p, ..cfg.clone() }, n);
    let patched_names: Vec<&str> =
        patched.ps.params().iter().map(|pa| pa.name.as_str()).collect();
    assert_eq!(names, patched_names, "patching must not change the parameter layout");
    let pshape = |name: &str| {
        patched.ps.params().iter().find(|pa| pa.name == name).expect(name).shape.clone()
    };
    assert_eq!(pshape("temporal.proj.w"), vec![p * n, cfg.d_model]);
    assert_eq!(pshape("temporal.recon.w"), vec![cfg.d_model, p * n]);
}

#[test]
fn patched_training_is_bitwise_identical_across_thread_counts() {
    // The determinism contract holds at P > 1 too: gather/reshape kernels
    // shard by output row like everything else.
    let train = series(256, 14);
    let val = series(64, 15);
    let test = series(96, 16);
    let run = |threads: usize| -> (Vec<f32>, Vec<f32>) {
        let mut det = TfmaeDetector::new(TfmaeConfig {
            epochs: 2,
            patch_len: 4,
            ..TfmaeConfig::tiny()
        });
        det.set_executor(Arc::new(if threads <= 1 {
            Executor::serial()
        } else {
            Executor::with_threads(threads)
        }));
        det.fit(&train, &val);
        let scores = det.score(&test);
        (det.loss_curve.clone(), scores)
    };
    let (serial_losses, serial_scores) = run(1);
    assert!(!serial_losses.is_empty());
    let (losses, scores) = run(4);
    let exact =
        |a: &[f32], b: &[f32]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    assert_eq!(serial_losses.len(), losses.len());
    assert!(exact(&serial_losses, &losses), "patched loss trajectory diverged");
    assert!(exact(&serial_scores, &scores), "patched scores diverged");
}

#[test]
fn train_report_carries_exec_stats() {
    let train = series(256, 9);
    let val = series(64, 10);
    let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
    det.set_executor(Arc::new(Executor::with_threads(2)));
    det.fit(&train, &val);
    let exec = det.train_report.exec;
    assert_eq!(exec.threads, 2);
    assert!(exec.tasks_dispatched > 0);
    assert!(exec.pool_hits > 0);
    assert!(exec.peak_arena_bytes > 0);
}
