//! Property tests for the evaluation protocol.

use proptest::prelude::*;
use tfmae_metrics::{
    apply_threshold, best_f1_threshold, point_adjust, pr_auc, roc_auc, segments,
    threshold_for_ratio, Confusion, EmpiricalCdf, Prf,
};

fn labels(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..2, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn confusion_counts_are_complete(pred in labels(1..200), seed in 0u64..50) {
        let truth: Vec<u8> = pred.iter().enumerate()
            .map(|(i, _)| u8::from((i as u64).wrapping_mul(seed + 1) % 3 == 0))
            .collect();
        let c = Confusion::from_predictions(&pred, &truth);
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, pred.len());
    }

    #[test]
    fn f1_bounded_and_symmetric_in_perfect_case(truth in labels(1..100)) {
        let prf = Prf::from_predictions(&truth, &truth);
        if truth.contains(&1) {
            prop_assert_eq!(prf.f1, 100.0);
        } else {
            prop_assert_eq!(prf.f1, 0.0);
        }
    }

    #[test]
    fn point_adjust_output_is_union_of_pred_and_full_segments(
        pred in labels(10..150),
        truth in labels(10..150),
    ) {
        let n = pred.len().min(truth.len());
        let (pred, truth) = (&pred[..n], &truth[..n]);
        let adj = point_adjust(pred, truth);
        for t in 0..n {
            // Never removes a prediction.
            prop_assert!(adj[t] >= pred[t]);
            // Only adds inside ground-truth segments.
            if adj[t] == 1 && pred[t] == 0 {
                prop_assert_eq!(truth[t], 1);
            }
        }
        // Each segment is all-or-original.
        for seg in segments(truth) {
            let any_pred = pred[seg.clone()].contains(&1);
            if any_pred {
                prop_assert!(adj[seg].iter().all(|&a| a == 1));
            }
        }
    }

    #[test]
    fn best_f1_threshold_dominates_ratio_threshold(
        scores in proptest::collection::vec(0.0f32..1.0, 30..150),
        truth in labels(30..150),
    ) {
        let n = scores.len().min(truth.len());
        let (scores, truth) = (&scores[..n], &truth[..n]);
        let (_, best) = best_f1_threshold(scores, truth, 200);
        let delta = threshold_for_ratio(scores, 0.1);
        let prf = Prf::from_predictions(&point_adjust(&apply_threshold(scores, delta), truth), truth);
        prop_assert!(best + 1e-9 >= prf.f1, "best-F1 sweep must dominate: {} vs {}", best, prf.f1);
    }

    #[test]
    fn roc_auc_bounded(scores in proptest::collection::vec(-5.0f32..5.0, 10..100), truth in labels(10..100)) {
        let n = scores.len().min(truth.len());
        let auc = roc_auc(&scores[..n], &truth[..n]);
        prop_assert!((0.0..=1.0).contains(&auc));
        let ap = pr_auc(&scores[..n], &truth[..n]);
        prop_assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    fn cdf_is_monotone_and_normalized(scores in proptest::collection::vec(-10.0f32..10.0, 1..200)) {
        let cdf = EmpiricalCdf::new(&scores);
        let q0 = cdf.quantile(0.0);
        let q1 = cdf.quantile(1.0);
        prop_assert!(q0 <= q1);
        prop_assert_eq!(cdf.eval(q1), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = q0 + (q1 - q0) * i as f32 / 20.0;
            let v = cdf.eval(x);
            prop_assert!(v + 1e-12 >= prev);
            prev = v;
        }
    }
}
