//! Threshold-free metrics: ROC-AUC and PR-AUC (average precision).
//!
//! Not reported in the paper's tables, but used by the reproduction's
//! integration tests as threshold-independent sanity checks on detectors.

/// Area under the ROC curve via the Mann–Whitney U statistic.
/// Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f32], truth: &[u8]) -> f64 {
    assert_eq!(scores.len(), truth.len());
    let mut pairs: Vec<(f32, u8)> = scores.iter().copied().zip(truth.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let pos = truth.iter().filter(|&&t| t != 0).count();
    let neg = truth.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Rank sum with tie-averaged ranks.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j + 1) as f64 / 2.0; // 1-based average rank of the tie group
        for p in &pairs[i..j] {
            if p.1 != 0 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (pos as f64) * (pos as f64 + 1.0) / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Average precision (area under the precision-recall curve, step-wise).
pub fn pr_auc(scores: &[f32], truth: &[u8]) -> f64 {
    assert_eq!(scores.len(), truth.len());
    let pos = truth.iter().filter(|&&t| t != 0).count();
    if pos == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut ap = 0.0f64;
    for (rank, &i) in idx.iter().enumerate() {
        if truth[i] != 0 {
            tp += 1;
            ap += tp as f64 / (rank + 1) as f64;
        }
    }
    ap / pos as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_one() {
        let scores = vec![0.1, 0.2, 0.9, 0.95];
        let truth = vec![0, 0, 1, 1];
        assert!((roc_auc(&scores, &truth) - 1.0).abs() < 1e-9);
        assert!((pr_auc(&scores, &truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_scores_give_zero_auc() {
        let scores = vec![0.9, 0.95, 0.1, 0.2];
        let truth = vec![0, 0, 1, 1];
        assert!(roc_auc(&scores, &truth) < 1e-9);
    }

    #[test]
    fn random_like_ties_give_half() {
        let scores = vec![1.0; 10];
        let truth = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        assert!((roc_auc(&scores, &truth) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[0, 0]), 0.5);
        assert_eq!(roc_auc(&[1.0, 2.0], &[1, 1]), 0.5);
        assert_eq!(pr_auc(&[1.0, 2.0], &[0, 0]), 0.0);
    }

    #[test]
    fn pr_auc_hand_case() {
        // Ranked: pos, neg, pos → AP = (1/1 + 2/3)/2 = 5/6.
        let scores = vec![0.9, 0.8, 0.7];
        let truth = vec![1, 0, 1];
        assert!((pr_auc(&scores, &truth) - 5.0 / 6.0).abs() < 1e-9);
    }
}
