//! Point adjustment (§V-A2).
//!
//! "Consistent with literature settings, we apply the point adjustment
//! strategy to obtain detection results, where continuous anomalies are
//! identified if a single observation in the segment is detected." — i.e.
//! if any observation inside a ground-truth anomaly segment is predicted
//! anomalous, the whole segment counts as detected.

/// Applies point adjustment: returns a copy of `pred` where every
/// ground-truth anomaly segment containing at least one predicted point is
/// fully set to 1. Predictions outside segments are untouched.
pub fn point_adjust(pred: &[u8], truth: &[u8]) -> Vec<u8> {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    let n = pred.len();
    let mut out = pred.to_vec();
    let mut i = 0;
    while i < n {
        if truth[i] == 0 {
            i += 1;
            continue;
        }
        // Segment [i, j).
        let mut j = i;
        while j < n && truth[j] != 0 {
            j += 1;
        }
        if pred[i..j].iter().any(|&p| p != 0) {
            for slot in &mut out[i..j] {
                *slot = 1;
            }
        }
        i = j;
    }
    out
}

/// Ground-truth anomaly segments as half-open ranges.
pub fn segments(truth: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < truth.len() {
        if truth[i] != 0 {
            let start = i;
            while i < truth.len() && truth[i] != 0 {
                i += 1;
            }
            out.push(start..i);
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hit_fills_segment() {
        let truth = [0, 1, 1, 1, 0, 1, 1, 0];
        let pred = [0, 0, 1, 0, 0, 0, 0, 0];
        let adj = point_adjust(&pred, &truth);
        assert_eq!(adj, vec![0, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn miss_leaves_segment_unfilled() {
        let truth = [1, 1, 0, 0];
        let pred = [0, 0, 1, 0];
        let adj = point_adjust(&pred, &truth);
        assert_eq!(adj, vec![0, 0, 1, 0], "false positives outside segments are kept");
    }

    #[test]
    fn idempotent() {
        let truth = [0, 1, 1, 0, 1];
        let pred = [0, 1, 0, 1, 1];
        let once = point_adjust(&pred, &truth);
        let twice = point_adjust(&once, &truth);
        assert_eq!(once, twice);
    }

    #[test]
    fn monotone_in_predictions() {
        // Adding predicted points can only add adjusted points.
        let truth = [0, 1, 1, 1, 0, 0, 1, 1];
        let weak = [0, 0, 0, 0, 0, 0, 1, 0];
        let strong = [0, 1, 0, 0, 0, 0, 1, 0];
        let a = point_adjust(&weak, &truth);
        let b = point_adjust(&strong, &truth);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(y >= x);
        }
    }

    #[test]
    fn segment_extraction() {
        let truth = [1, 1, 0, 0, 1, 0, 1];
        let segs = segments(&truth);
        assert_eq!(segs, vec![0..2, 4..5, 6..7]);
        assert!(segments(&[0, 0]).is_empty());
        assert_eq!(segments(&[1]), vec![0..1]);
    }

    #[test]
    fn boundary_segments() {
        let truth = [1, 0, 1];
        let pred = [1, 0, 0];
        assert_eq!(point_adjust(&pred, &truth), vec![1, 0, 0]);
    }
}
