//! Thresholding (Eq. 17 and §V-A4).
//!
//! The paper pre-determines δ "by detecting r% data as anomalies", with the
//! quantile computed over validation-set scores ("thresholds of all methods
//! are calculated through the validation set", §V-A5).

/// Threshold flagging the top `ratio` fraction of `scores` as anomalous
/// (the `(1−ratio)`-quantile). `ratio` is clamped to `[0, 1]`.
///
/// Non-finite scores are ignored; returns `f32::INFINITY` (nothing will be
/// flagged — the fail-safe direction) when no finite score exists, when
/// `scores` is empty, or when `ratio` is NaN. All-equal scores yield that
/// value as the threshold, so everything is flagged for any `ratio > 0`.
pub fn threshold_for_ratio(scores: &[f32], ratio: f64) -> f32 {
    if ratio.is_nan() {
        return f32::INFINITY;
    }
    let mut finite: Vec<f32> = scores.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return f32::INFINITY;
    }
    let ratio = ratio.clamp(0.0, 1.0);
    finite.sort_by(f32::total_cmp);
    let k = ((finite.len() as f64) * (1.0 - ratio)).floor() as usize;
    let k = k.min(finite.len() - 1);
    finite[k]
}

/// Applies a threshold: `score >= δ → 1` (Eq. 17).
pub fn apply_threshold(scores: &[f32], delta: f32) -> Vec<u8> {
    scores.iter().map(|&s| u8::from(s >= delta)).collect()
}

/// Sweeps candidate thresholds (all unique score values, subsampled to at
/// most `max_candidates`) and returns `(best_threshold, best_f1_percent)`
/// under point-adjusted F1. Used for protocol ablations, not the headline
/// numbers.
pub fn best_f1_threshold(scores: &[f32], truth: &[u8], max_candidates: usize) -> (f32, f64) {
    assert_eq!(scores.len(), truth.len());
    let mut cands: Vec<f32> = scores.iter().copied().filter(|v| v.is_finite()).collect();
    cands.sort_by(f32::total_cmp);
    cands.dedup();
    let step = (cands.len() / max_candidates.max(1)).max(1);
    let mut best = (f32::INFINITY, 0.0f64);
    for c in cands.iter().step_by(step) {
        let pred = apply_threshold(scores, *c);
        let adj = crate::adjust::point_adjust(&pred, truth);
        let f1 = crate::prf::Prf::from_predictions(&adj, truth).f1;
        if f1 > best.1 {
            best = (*c, f1);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_flags_expected_fraction() {
        let scores: Vec<f32> = (0..100).map(|v| v as f32).collect();
        let delta = threshold_for_ratio(&scores, 0.10);
        let flagged = apply_threshold(&scores, delta).iter().map(|&v| v as usize).sum::<usize>();
        assert!((9..=11).contains(&flagged), "flagged {flagged}");
    }

    #[test]
    fn ratio_zero_flags_only_max() {
        let scores = vec![1.0, 5.0, 3.0];
        let delta = threshold_for_ratio(&scores, 0.0);
        assert_eq!(apply_threshold(&scores, delta), vec![0, 1, 0]);
    }

    #[test]
    fn ratio_one_flags_everything() {
        let scores = vec![1.0, 5.0, 3.0];
        let delta = threshold_for_ratio(&scores, 1.0);
        assert_eq!(apply_threshold(&scores, delta).iter().map(|&v| v as usize).sum::<usize>(), 3);
    }

    #[test]
    fn non_finite_scores_are_ignored() {
        let scores = vec![f32::NAN, 1.0, 2.0, f32::INFINITY];
        let delta = threshold_for_ratio(&scores, 0.5);
        assert!(delta.is_finite());
        assert_eq!(threshold_for_ratio(&[f32::NAN], 0.5), f32::INFINITY);
    }

    #[test]
    fn empty_scores_flag_nothing() {
        let delta = threshold_for_ratio(&[], 0.1);
        assert_eq!(delta, f32::INFINITY);
        assert!(apply_threshold(&[1.0, 2.0], delta).iter().all(|&p| p == 0));
    }

    #[test]
    fn all_equal_scores_have_stable_threshold() {
        let scores = vec![3.5f32; 10];
        let delta = threshold_for_ratio(&scores, 0.1);
        assert_eq!(delta, 3.5);
        // `>= δ` flags every (equal) score — degenerate input, but finite
        // and deterministic rather than a panic or an arbitrary subset.
        assert_eq!(apply_threshold(&scores, delta).iter().map(|&v| v as usize).sum::<usize>(), 10);
    }

    #[test]
    fn nan_ratio_flags_nothing() {
        let scores = vec![1.0, 2.0, 3.0];
        let delta = threshold_for_ratio(&scores, f64::NAN);
        assert_eq!(delta, f32::INFINITY);
        assert!(apply_threshold(&scores, delta).iter().all(|&p| p == 0));
    }

    #[test]
    fn best_f1_finds_separating_threshold() {
        // Scores perfectly separate: anomalies have score 10, normals 1.
        let scores = vec![1.0, 1.0, 10.0, 1.0, 10.0, 10.0];
        let truth = vec![0, 0, 1, 0, 1, 1];
        let (thr, f1) = best_f1_threshold(&scores, &truth, 100);
        assert!(thr > 1.0 && thr <= 10.0);
        assert!((f1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_is_monotone_in_ratio() {
        let scores: Vec<f32> = (0..1000).map(|v| (v as f32).sin()).collect();
        let t1 = threshold_for_ratio(&scores, 0.01);
        let t2 = threshold_for_ratio(&scores, 0.10);
        let t3 = threshold_for_ratio(&scores, 0.50);
        assert!(t1 >= t2 && t2 >= t3);
    }
}
