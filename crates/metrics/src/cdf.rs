//! Empirical CDFs of anomaly scores (Figs. 1 and 9).
//!
//! The paper visualizes distribution shift by plotting the cumulative
//! distribution of anomaly scores on the validation vs test sets: a
//! reconstruction model shows a gap; TFMAE's contrastive criterion doesn't.

/// An empirical cumulative distribution function over a score sample.
#[derive(Clone, Debug)]
pub struct EmpiricalCdf {
    sorted: Vec<f32>,
}

impl EmpiricalCdf {
    /// Builds the CDF (non-finite scores are dropped).
    pub fn new(scores: &[f32]) -> Self {
        let mut sorted: Vec<f32> = scores.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted }
    }

    /// `P(score <= x)`.
    pub fn eval(&self, x: f32) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (`0 <= q <= 1`).
    pub fn quantile(&self, q: f64) -> f32 {
        if self.sorted.is_empty() {
            return f32::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// Samples `(x, F(x))` pairs at `n` evenly spaced quantiles — the series
    /// plotted in Figs. 1/9.
    pub fn curve(&self, n: usize) -> Vec<(f32, f64)> {
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1).max(1) as f64;
                let x = self.quantile(q);
                (x, self.eval(x))
            })
            .collect()
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Kolmogorov–Smirnov distance `sup_x |F(x) − G(x)|` between two score
/// samples — the quantitative size of the Fig. 9 gap.
pub fn ks_distance(a: &[f32], b: &[f32]) -> f64 {
    let fa = EmpiricalCdf::new(a);
    let fb = EmpiricalCdf::new(b);
    if fa.is_empty() || fb.is_empty() {
        return 0.0;
    }
    let mut xs: Vec<f32> = fa.sorted.iter().chain(fb.sorted.iter()).copied().collect();
    xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
    xs.dedup();
    xs.iter().map(|&x| (fa.eval(x) - fb.eval(x)).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(2.0), 0.5);
        assert_eq!(cdf.eval(10.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let cdf = EmpiricalCdf::new(&[5.0, 1.0, 3.0]);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 3.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn curve_is_monotone() {
        let scores: Vec<f32> = (0..100).map(|v| ((v * 37) % 100) as f32).collect();
        let curve = EmpiricalCdf::new(&scores).curve(20);
        for pair in curve.windows(2) {
            assert!(pair[1].0 >= pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
    }

    #[test]
    fn ks_zero_for_identical_and_one_for_disjoint() {
        let a = vec![1.0, 2.0, 3.0];
        assert!(ks_distance(&a, &a) < 1e-12);
        let b = vec![10.0, 20.0, 30.0];
        assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_detects_shift() {
        let a: Vec<f32> = (0..1000).map(|v| (v % 100) as f32 / 100.0).collect();
        let shifted: Vec<f32> = a.iter().map(|v| v + 0.3).collect();
        let d = ks_distance(&a, &shifted);
        assert!(d > 0.25 && d < 0.4, "ks was {d}");
    }

    #[test]
    fn non_finite_dropped() {
        let cdf = EmpiricalCdf::new(&[f32::NAN, 1.0, f32::INFINITY]);
        assert_eq!(cdf.len(), 1);
    }
}
