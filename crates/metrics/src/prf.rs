//! Precision / recall / F1 (the paper's metrics, §V-A2).

use serde::{Deserialize, Serialize};

/// Binary confusion counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Counts a prediction/label pair stream (1 = anomaly).
    pub fn from_predictions(pred: &[u8], truth: &[u8]) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in pred.iter().zip(truth.iter()) {
            match (p != 0, t != 0) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision `TP / (TP + FP)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall `TP / (TP + FN)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// F1 — harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// P/R/F1 triple in percent, as the paper reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Prf {
    /// Precision (%).
    pub precision: f64,
    /// Recall (%).
    pub recall: f64,
    /// F1-score (%).
    pub f1: f64,
}

impl Prf {
    /// Builds the percent triple from a confusion matrix.
    pub fn from_confusion(c: &Confusion) -> Self {
        Self { precision: c.precision() * 100.0, recall: c.recall() * 100.0, f1: c.f1() * 100.0 }
    }

    /// Convenience: predictions + labels → percent triple.
    pub fn from_predictions(pred: &[u8], truth: &[u8]) -> Self {
        Self::from_confusion(&Confusion::from_predictions(pred, truth))
    }

    /// Element-wise mean of several results (the paper's "Average" column).
    pub fn mean(items: &[Prf]) -> Prf {
        if items.is_empty() {
            return Prf::default();
        }
        let n = items.len() as f64;
        Prf {
            precision: items.iter().map(|p| p.precision).sum::<f64>() / n,
            recall: items.iter().map(|p| p.recall).sum::<f64>() / n,
            f1: items.iter().map(|p| p.f1).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let p = Prf::from_predictions(&[0, 1, 1, 0], &[0, 1, 1, 0]);
        assert_eq!(p.precision, 100.0);
        assert_eq!(p.recall, 100.0);
        assert_eq!(p.f1, 100.0);
    }

    #[test]
    fn hand_computed_case() {
        // tp=1, fp=1, fn=1, tn=1 → P=R=F1=0.5.
        let c = Confusion::from_predictions(&[1, 1, 0, 0], &[1, 0, 1, 0]);
        assert_eq!(c, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let never = Prf::from_predictions(&[0, 0], &[1, 1]);
        assert_eq!(never.precision, 0.0);
        assert_eq!(never.f1, 0.0);
        let no_anomaly = Prf::from_predictions(&[0, 0], &[0, 0]);
        assert_eq!(no_anomaly.recall, 0.0);
    }

    #[test]
    fn mean_averages_componentwise() {
        let a = Prf { precision: 100.0, recall: 0.0, f1: 0.0 };
        let b = Prf { precision: 0.0, recall: 100.0, f1: 50.0 };
        let m = Prf::mean(&[a, b]);
        assert_eq!(m.precision, 50.0);
        assert_eq!(m.recall, 50.0);
        assert_eq!(m.f1, 25.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_panics() {
        Confusion::from_predictions(&[1], &[1, 0]);
    }
}
