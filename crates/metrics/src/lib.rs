//! # tfmae-metrics
//!
//! Evaluation protocol of the TFMAE paper: precision/recall/F1 with **point
//! adjustment** (§V-A2), ratio-based thresholding on validation scores
//! (Eq. 17, §V-A4), plus threshold-free AUCs and the empirical score CDFs
//! used in Figs. 1 and 9.
//!
//! ```
//! use tfmae_metrics::{threshold_for_ratio, apply_threshold, point_adjust, Prf};
//!
//! let val_scores = vec![0.1, 0.2, 0.15, 0.12, 0.9];
//! let test_scores = vec![0.1, 0.95, 0.97, 0.2, 0.11];
//! let truth = vec![0, 1, 1, 0, 0];
//!
//! let delta = threshold_for_ratio(&val_scores, 0.2);
//! let pred = apply_threshold(&test_scores, delta);
//! let adjusted = point_adjust(&pred, &truth);
//! let prf = Prf::from_predictions(&adjusted, &truth);
//! assert_eq!(prf.f1, 100.0);
//! ```

#![warn(missing_docs)]

pub mod adjust;
pub mod auc;
pub mod cdf;
pub mod prf;
pub mod threshold;

pub use adjust::{point_adjust, segments};
pub use auc::{pr_auc, roc_auc};
pub use cdf::{ks_distance, EmpiricalCdf};
pub use prf::{Confusion, Prf};
pub use threshold::{apply_threshold, best_f1_threshold, threshold_for_ratio};
