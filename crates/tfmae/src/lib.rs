//! # tfmae
//!
//! Facade crate for the full TFMAE reproduction (Fang et al., *Temporal-
//! Frequency Masked Autoencoders for Time Series Anomaly Detection*, ICDE
//! 2024): one `use tfmae::prelude::*` pulls in the model, the benchmark
//! simulators, the evaluation protocol and the baseline roster.
//!
//! ```
//! use tfmae::prelude::*;
//!
//! let bench = generate(DatasetKind::NipsTsGlobal, 7, 800);
//! let mut det = TfmaeDetector::new(TfmaeConfig::tiny());
//! let prf = evaluate(&mut det, &bench, 0.05);
//! assert!(prf.f1 >= 0.0 && prf.f1 <= 100.0);
//! ```

#![warn(missing_docs)]

pub use tfmae_baselines as baselines;
pub use tfmae_core as core;
pub use tfmae_data as data;
pub use tfmae_fft as fft;
pub use tfmae_metrics as metrics;
pub use tfmae_nn as nn;
pub use tfmae_obs as obs;
pub use tfmae_tensor as tensor;

/// Everything needed for the common train → score → evaluate flow.
pub mod prelude {
    pub use tfmae_baselines::{evaluate, evaluate_fitted, table3_roster, DeepProtocol};
    pub use tfmae_core::{
        AdversarialMode, FreqMaskKind, MaskAblation, ModelAblation, ScoreKind, TemporalMaskKind, TfmaeConfig,
        TfmaeDetector, TfmaeModel,
    };
    pub use tfmae_data::{
        generate, Benchmark, DatasetKind, Detector, FitReport, TimeSeries, ZScore,
    };
    pub use tfmae_metrics::{
        apply_threshold, best_f1_threshold, point_adjust, pr_auc, roc_auc, threshold_for_ratio,
        EmpiricalCdf, Prf,
    };
}
