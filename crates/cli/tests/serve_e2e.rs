//! End-to-end tests of `tfmae serve`: out-dir handling, metrics exports,
//! and the exit-code contract, through the real binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tfmae"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tfmae_serve_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Simulates a tiny dataset and trains a model into `dir`, returning
/// (model path, data dir).
fn prepared(dir: &Path) -> (PathBuf, PathBuf) {
    let data = dir.join("data");
    let model = dir.join("model.json");
    let out = bin()
        .args(["simulate", "--dataset", "global", "--divisor", "200", "--out-dir"])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["train", "--epochs", "1", "--win", "32", "--train"])
        .arg(data.join("train.csv"))
        .arg("--model")
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    (model, data)
}

#[test]
fn serve_creates_nested_out_dir_and_writes_metrics() {
    let dir = tmpdir("metrics");
    let (model, data) = prepared(&dir);
    // Every output path is nested and nonexistent: serve must create them.
    let out_dir = dir.join("verdicts").join("run1");
    let metrics_json = dir.join("metrics").join("snapshot.json");
    let metrics_prom = dir.join("metrics").join("tfmae.prom");

    let out = bin()
        .args(["serve", "--threshold", "0.5", "--hop", "4", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(data.join("test.csv"))
        .arg("--out-dir")
        .arg(&out_dir)
        .arg("--metrics-out")
        .arg(&metrics_json)
        .arg("--metrics-prom")
        .arg(&metrics_prom)
        .output()
        .unwrap();
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("throughput"), "missing summary in: {text}");

    // Verdict CSV landed in the freshly created nested directory.
    let verdicts = std::fs::read_to_string(out_dir.join("stream_0.csv")).unwrap();
    assert!(verdicts.starts_with("t,score,is_anomaly,quality"));
    assert!(verdicts.lines().count() > 1, "no verdicts written");

    // Both metrics files validate with the exporters' own checkers and
    // cover instruments from every wired layer.
    let prom = std::fs::read_to_string(&metrics_prom).unwrap();
    tfmae_obs::validate_prometheus(&prom).expect("well-formed Prometheus textfile");
    for metric in ["serve_rows", "serve_tick_ns_count", "exec_tasks_dispatched", "fft_plan_cache_misses"] {
        assert!(prom.contains(metric), "{metric} missing from:\n{prom}");
    }
    let json = std::fs::read_to_string(&metrics_json).unwrap();
    tfmae_obs::validate_json_shape(&json).expect("balanced JSON snapshot");
    assert!(json.contains("\"serve.rows\""));
    assert!(json.contains("\"serve.tick_ns\""));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_rejects_empty_out_dir_and_metrics_paths() {
    let dir = tmpdir("badflags");
    let (model, data) = prepared(&dir);

    // `--out-dir` directly followed by the next flag has no value.
    let out = bin()
        .args(["serve", "--threshold", "0.5", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(data.join("test.csv"))
        .args(["--out-dir", "--hop", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "empty --out-dir is a usage error");
    assert!(String::from_utf8_lossy(&out.stderr).contains("out-dir"));

    let out = bin()
        .args(["serve", "--threshold", "0.5", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(data.join("test.csv"))
        .args(["--metrics-out", "--hop", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "empty --metrics-out is a usage error");
    assert!(String::from_utf8_lossy(&out.stderr).contains("metrics-out"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_without_threshold_or_val_is_a_usage_error() {
    let dir = tmpdir("nothresh");
    let (model, data) = prepared(&dir);
    let out = bin()
        .args(["serve", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(data.join("test.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threshold"));
    let _ = std::fs::remove_dir_all(&dir);
}
