//! End-to-end tests of the `tfmae` binary: simulate → train → score →
//! evaluate through the filesystem, exactly as a user would.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tfmae"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tfmae_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulate"));
    assert!(text.contains("evaluate"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_flags_are_reported() {
    let out = bin().args(["simulate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--dataset"));
}

#[test]
fn full_pipeline_simulate_train_score_evaluate() {
    let dir = tmpdir("pipeline");
    let data = dir.join("data");
    let model = dir.join("model.json");
    let scores = dir.join("scores.csv");

    let out = bin()
        .args(["simulate", "--dataset", "global", "--divisor", "150", "--out-dir"])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(data.join("train.csv").exists());
    assert!(data.join("test.csv").exists());

    let out = bin()
        .args(["train", "--epochs", "3", "--win", "50", "--rt", "0.25", "--rf", "0.2", "--train"])
        .arg(data.join("train.csv"))
        .arg("--val")
        .arg(data.join("val.csv"))
        .arg("--model")
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    let out = bin()
        .args(["score", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(data.join("test.csv"))
        .arg("--out")
        .arg(&scores)
        .output()
        .unwrap();
    assert!(out.status.success(), "score failed: {}", String::from_utf8_lossy(&out.stderr));
    let score_text = std::fs::read_to_string(&scores).unwrap();
    // header + one row per test observation
    let test_rows = std::fs::read_to_string(data.join("test.csv")).unwrap().lines().count() - 1;
    assert_eq!(score_text.lines().count() - 1, test_rows);

    let out = bin()
        .args(["evaluate", "--ratio", "0.05", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(data.join("test.csv"))
        .arg("--val")
        .arg(data.join("val.csv"))
        .output()
        .unwrap();
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("F1 ="), "missing metrics in: {text}");
    assert!(text.contains("ROC-AUC"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quantize_then_serve_matches_f32_verdicts() {
    let dir = tmpdir("quantize");
    let data = dir.join("data");
    let model = dir.join("model.json");

    let out = bin()
        .args(["simulate", "--dataset", "global", "--divisor", "300", "--out-dir"])
        .arg(&data)
        .output()
        .unwrap();
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["train", "--epochs", "2", "--win", "32", "--d-model", "16", "--layers", "1"])
        .arg("--train")
        .arg(data.join("train.csv"))
        .arg("--val")
        .arg(data.join("val.csv"))
        .arg("--model")
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));

    // `--precision f32` is rejected: quantize's whole point is a non-f32 section.
    let out = bin()
        .args(["quantize", "--precision", "f32", "--out", "x.json", "--model"])
        .arg(&model)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let qmodel = dir.join("model.bf16.json");
    let out = bin()
        .args(["quantize", "--model"])
        .arg(&model)
        .arg("--out")
        .arg(&qmodel)
        .output()
        .unwrap();
    assert!(out.status.success(), "quantize failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bf16 checkpoint"), "unexpected output: {text}");

    // One serve per precision path: plain f32 model, quantized model with
    // its stored precision, quantized model overridden back to f32.
    let serve = |model: &PathBuf, extra: &[&str], out_dir: &PathBuf| {
        let out = bin()
            .args(["serve", "--hop", "8", "--model"])
            .arg(model)
            .arg("--input")
            .arg(data.join("test.csv"))
            .arg("--val")
            .arg(data.join("val.csv"))
            .args(extra)
            .arg("--out-dir")
            .arg(out_dir)
            .output()
            .unwrap();
        assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let f32_text = serve(&model, &[], &dir.join("f32"));
    let bf16_text = serve(&qmodel, &[], &dir.join("bf16"));
    let override_text = serve(&qmodel, &["--precision", "f32"], &dir.join("override"));
    assert!(f32_text.contains("precision f32"), "{f32_text}");
    assert!(bf16_text.contains("precision bf16"), "stored precision must apply: {bf16_text}");
    assert!(override_text.contains("precision f32"), "{override_text}");

    // The f32 override of a quantized checkpoint is bitwise identical to the
    // plain f32 model; bf16 flips no verdicts on this tiny run.
    let read = |d: &PathBuf| std::fs::read_to_string(d.join("stream_0.csv")).unwrap();
    assert_eq!(read(&dir.join("f32")), read(&dir.join("override")));
    let verdicts = |s: &str| -> Vec<String> {
        s.lines().skip(1).map(|l| l.split(',').nth(2).unwrap().to_string()).collect()
    };
    let a = verdicts(&read(&dir.join("f32")));
    let b = verdicts(&read(&dir.join("bf16")));
    assert_eq!(a.len(), b.len());
    let flips = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    assert!(flips <= a.len() / 100, "bf16 flipped {flips}/{} verdicts", a.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn score_with_wrong_channel_count_fails_cleanly() {
    let dir = tmpdir("dims");
    let data = dir.join("data");
    let model = dir.join("model.json");
    bin()
        .args(["simulate", "--dataset", "global", "--divisor", "200", "--out-dir"])
        .arg(&data)
        .output()
        .unwrap();
    bin()
        .args(["train", "--epochs", "1", "--win", "32", "--train"])
        .arg(data.join("train.csv"))
        .arg("--model")
        .arg(&model)
        .output()
        .unwrap();
    // Two-channel input against the univariate model.
    let two = dir.join("two.csv");
    std::fs::write(&two, "a,b\n1.0,2.0\n3.0,4.0\n").unwrap();
    let out = bin()
        .args(["score", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(&two)
        .arg("--out")
        .arg(dir.join("s.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "data errors exit with 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("channels"), "unhelpful error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evaluate_without_labels_fails_cleanly() {
    let dir = tmpdir("nolabels");
    let data = dir.join("data");
    let model = dir.join("model.json");
    bin()
        .args(["simulate", "--dataset", "global", "--divisor", "200", "--out-dir"])
        .arg(&data)
        .output()
        .unwrap();
    bin()
        .args(["train", "--epochs", "1", "--win", "32", "--train"])
        .arg(data.join("train.csv"))
        .arg("--model")
        .arg(&model)
        .output()
        .unwrap();
    // train.csv has no label column.
    let out = bin()
        .args(["evaluate", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(data.join("train.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "data errors exit with 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("label"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_codes_and_lenient_mode() {
    let dir = tmpdir("lenient");
    let data = dir.join("data");
    let model = dir.join("model.json");
    bin()
        .args(["simulate", "--dataset", "global", "--divisor", "200", "--out-dir"])
        .arg(&data)
        .output()
        .unwrap();
    let out = bin()
        .args(["train", "--epochs", "1", "--win", "32", "--train"])
        .arg(data.join("train.csv"))
        .arg("--model")
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));

    // A corrupt checkpoint is a checkpoint error: exit code 4.
    let bad_model = dir.join("bad_model.json");
    std::fs::write(&bad_model, "{definitely not a checkpoint").unwrap();
    let out = bin()
        .args(["score", "--model"])
        .arg(&bad_model)
        .arg("--input")
        .arg(data.join("test.csv"))
        .arg("--out")
        .arg(dir.join("s.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "checkpoint errors exit with 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("corrupt"));

    // An input with a malformed row: strict fails with 3, --lenient skips it.
    let mut dirty = String::from("c0\n");
    for i in 0..48 {
        dirty.push_str(&format!("{}.0\n", i % 7));
        if i == 20 {
            dirty.push_str("oops\n");
        }
    }
    let dirty_path = dir.join("dirty.csv");
    std::fs::write(&dirty_path, dirty).unwrap();

    let strict = bin()
        .args(["score", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(&dirty_path)
        .arg("--out")
        .arg(dir.join("s.csv"))
        .output()
        .unwrap();
    assert_eq!(strict.status.code(), Some(3), "malformed CSV exits with 3");

    let lenient = bin()
        .args(["score", "--lenient", "--model"])
        .arg(&model)
        .arg("--input")
        .arg(&dirty_path)
        .arg("--out")
        .arg(dir.join("s.csv"))
        .output()
        .unwrap();
    assert!(
        lenient.status.success(),
        "--lenient should skip the bad row: {}",
        String::from_utf8_lossy(&lenient.stderr)
    );
    assert!(
        String::from_utf8_lossy(&lenient.stderr).contains("skipped 1 malformed row"),
        "lenient mode must warn about skipped rows"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
