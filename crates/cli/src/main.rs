//! `tfmae` — command-line interface to the TFMAE reproduction.
//!
//! ```text
//! tfmae simulate --dataset smd --divisor 100 --out-dir data/      # write train/val/test CSVs
//! tfmae train    --train data/train.csv --val data/val.csv --model model.json
//! tfmae score    --model model.json --input data/test.csv --out scores.csv
//! tfmae evaluate --model model.json --input data/test.csv --ratio 0.005
//! tfmae serve    --model model.json --input s0.csv --input s1.csv --val data/val.csv
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use tfmae_core::{
    AdaptationConfig, FinetuneConfig, Precision, QuantStore, ServingConfig, ServingEngine,
    TfmaeConfig, TfmaeDetector,
};
use tfmae_data::{
    generate, read_csv, read_csv_lenient, write_csv, DatasetKind, Detector, TimeSeries,
};
use tfmae_metrics::{apply_threshold, point_adjust, pr_auc, roc_auc, threshold_for_ratio, Prf};

fn usage() -> &'static str {
    "tfmae — Temporal-Frequency Masked Autoencoders for time-series anomaly detection

USAGE:
  tfmae simulate --dataset <msl|psm|smd|swat|smap|global|seasonal> [--divisor N] [--seed N] --out-dir DIR
  tfmae train    --train FILE.csv [--val FILE.csv] --model OUT.json [--lenient]
                 [--epochs N] [--win N] [--d-model N] [--layers N] [--rt F] [--rf F]
                 [--patch-len N] [--seed N]
  tfmae score    --model FILE.json --input FILE.csv --out FILE.csv [--lenient]
  tfmae evaluate --model FILE.json --input FILE.csv (--ratio F | --val FILE.csv --ratio F) [--lenient]
  tfmae quantize --model FILE.json --out OUT.json [--precision <bf16|int8>]
  tfmae serve    --model FILE.json --input FILE.csv [--input FILE.csv ...]
                 (--threshold F | --val FILE.csv [--ratio F]) [--hop N]
                 [--precision <f32|bf16|int8>] [--shards N]
                 [--refresh-every N] [--from-scratch] [--out-dir DIR] [--lenient]
                 [--metrics-out FILE.json] [--metrics-prom FILE.prom]
                 [--adapt] [--adapt-ratio F] [--adapt-every N] [--adapt-min-samples N]
                 [--adapt-window N] [--adapt-holdoff N] [--adapt-finetune]
                 [--adapt-save OUT.json]
  tfmae server   --listen ADDR --registry DIR [--shards N] [--workers N]
                 [--queue-cap N] [--max-body BYTES] [--max-batch N]
                 [--drain-grace-secs N]
  tfmae models   ls --registry DIR
  tfmae help

CSV format: one row per observation, one numeric column per channel, optional
header, optional trailing `label` column (needed by `evaluate`). With
--lenient, malformed CSV rows are skipped with a warning on stderr instead of
aborting.

`serve` replays each --input as an independent live stream through one shared
serving engine: rows are interleaved tick by tick, windows that become due on
the same tick are scored in one cross-stream batch, and per-stream verdicts
(t, score, is_anomaly, quality) land in DIR/stream_<i>.csv when --out-dir is
given. --val both derives the threshold (at --ratio, default 0.01) and
freezes each stream's score calibration so online scores match the offline
scale. --from-scratch disables the incremental masking state (baseline cost
model); --refresh-every tunes its exact re-seed cadence (default 64 hops).
--shards N partitions the streams across N engine shards that ingest and
score in parallel on multi-core hosts; verdicts are bitwise identical at any
shard count (default 1).

--patch-len folds that many consecutive time steps into one temporal token
(Ti-MAE-style patch embedding): attention cost in the temporal branch drops
~P²x, scores stay per-observation, and the frequency branch is untouched.
Must divide --win; the default 1 reproduces the unpatched model exactly.
`score`/`evaluate`/`serve` pick the patch length up from the checkpoint.

`quantize` rewrites an f32 checkpoint with a quant section recording the
requested serving precision (default bf16) plus per-parameter integrity CRCs;
the f32 payload is untouched, so legacy loaders and `--precision f32` still
see bitwise-identical scoring. `serve --precision` picks the weight precision
for inference (bf16 halves, int8 quarters, resident weight bytes; f32
accumulation throughout). Without the flag, serve applies the checkpoint's
stored precision, if any; `--precision f32` overrides a stored one and serves
the exact f32 model. Quantized serving releases the f32 weights, so
--adapt-finetune is disabled for it (threshold recalibration still runs).

--adapt turns on drift adaptation (default off; without it verdicts are
bitwise identical to the frozen engine): δ is recalibrated to the (1 − r)
quantile of recent clean serving scores every --adapt-every clean windows
(r from --adapt-ratio, default 0.02), with quarantined/degraded rows held
out of calibration and a --adapt-holdoff re-entry delay after quarantine.
--adapt-finetune additionally fine-tunes the model in the background on a
reservoir of clean windows; each update is snapshotted first and rolled
back (with exponential cadence backoff) if post-update scores leave the
guard band. --adapt-save writes the adapted model plus its adaptive state
as a v2 checkpoint; serving that file again with --adapt resumes δ and the
backoff where they left off.

`server` runs the long-lived network front-end: a model **registry**
directory of checkpoints, each loadable as an independent tenant, with
clients registering streams, pushing CSV rows and polling verdicts over a
minimal HTTP/1.1 protocol (see DESIGN.md §19 and README for a curl/nc
session). Per-stream ingest is bounded by --queue-cap; refusals are typed
(429 backpressure, 400 width_mismatch, 413 payload_too_large, 503
draining). SIGTERM/SIGINT (or POST /v1/shutdown) drains gracefully:
admitted rows finish scoring and verdicts stay pollable for
--drain-grace-secs before exit. GET /metrics serves the Prometheus
exposition of the runtime metrics registry. `models ls` prints one row per
registry checkpoint — version, CRC status, precision, patch/window/dims —
without loading any model.

--metrics-out / --metrics-prom turn on the runtime metrics registry and
write a JSON snapshot / Prometheus textfile on exit (and periodically during
the replay), covering tick latency, per-stream fault counters, executor and
FFT-plan-cache activity, and the streaming anomaly-score distribution. Point
the Prometheus node-exporter textfile collector at the --metrics-prom file.

EXIT CODES:
  0  success
  2  usage error (bad flags, bad values, unknown command)
  3  data error (unreadable/malformed CSV, channel mismatch, missing labels)
  4  checkpoint error (missing, corrupt, or incompatible model file)
  5  internal error"
}

/// Typed CLI failure; the variant fixes the process exit code so scripts
/// can distinguish operator mistakes from bad data and bad checkpoints.
enum CliError {
    /// Bad invocation: exit code 2.
    Usage(String),
    /// Input data problem: exit code 3.
    Data(String),
    /// Checkpoint problem: exit code 4.
    Checkpoint(String),
    /// Unexpected internal failure: exit code 5.
    Internal(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Data(_) => 3,
            CliError::Checkpoint(_) => 4,
            CliError::Internal(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Data(m)
            | CliError::Checkpoint(m)
            | CliError::Internal(m) => m,
        }
    }
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                // A flag followed by another flag (or by nothing) is a
                // boolean switch; only a plain token is consumed as a value.
                match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        flags.push((key.to_string(), next.clone()));
                        i += 2;
                    }
                    _ => {
                        flags.push((key.to_string(), String::new()));
                        i += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        Self { flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// All values of a repeatable flag, in order of appearance.
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(k, v)| k == key && !v.is_empty())
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether a boolean switch was passed (with or without a value).
    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        match self.get(key) {
            Some(v) if !v.is_empty() => Ok(v),
            _ => Err(CliError::Usage(format!("missing required flag --{key}"))),
        }
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError::Usage(format!("bad value for --{key}: {v:?}")))
            }
        }
    }
}

fn parse_dataset(name: &str) -> Result<DatasetKind, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "msl" => DatasetKind::Msl,
        "psm" => DatasetKind::Psm,
        "smd" => DatasetKind::Smd,
        "swat" => DatasetKind::Swat,
        "smap" => DatasetKind::Smap,
        "global" | "nips-ts-global" => DatasetKind::NipsTsGlobal,
        "seasonal" | "nips-ts-seasonal" => DatasetKind::NipsTsSeasonal,
        other => return Err(CliError::Usage(format!("unknown dataset {other:?}"))),
    })
}

fn cmd_simulate(args: &Args) -> Result<(), CliError> {
    let kind = parse_dataset(args.require("dataset")?)?;
    let divisor: usize = args.num("divisor", 100)?;
    let seed: u64 = args.num("seed", 7)?;
    let out_dir = PathBuf::from(args.require("out-dir")?);
    std::fs::create_dir_all(&out_dir).map_err(|e| CliError::Data(e.to_string()))?;

    let bench = generate(kind, seed, divisor);
    write_csv(out_dir.join("train.csv"), &bench.train, None)
        .map_err(|e| CliError::Data(e.to_string()))?;
    write_csv(out_dir.join("val.csv"), &bench.val, None)
        .map_err(|e| CliError::Data(e.to_string()))?;
    write_csv(out_dir.join("test.csv"), &bench.test, Some(&bench.test_labels))
        .map_err(|e| CliError::Data(e.to_string()))?;
    let hp = kind.paper_hparams();
    println!(
        "wrote {} simulator (dims={}, train={}, val={}, test={}, AR={:.1}%) to {}",
        kind.name(),
        bench.train.dims(),
        bench.train.len(),
        bench.val.len(),
        bench.test.len(),
        bench.realized_anomaly_ratio() * 100.0,
        out_dir.display()
    );
    println!(
        "paper hyper-parameters: --rt {} --rf {}  (threshold ratio r = {})",
        hp.r_t, hp.r_f, hp.r
    );
    Ok(())
}

fn load_series(path: &str, lenient: bool) -> Result<(TimeSeries, Option<Vec<u8>>), CliError> {
    if lenient {
        let (data, warnings) =
            read_csv_lenient(path).map_err(|e| CliError::Data(format!("{path}: {e}")))?;
        for w in &warnings {
            eprintln!("warning: {path}: {w}");
        }
        if !warnings.is_empty() {
            eprintln!("warning: {path}: skipped {} malformed row(s)", warnings.len());
        }
        Ok((data.series, data.labels))
    } else {
        let data = read_csv(path).map_err(|e| CliError::Data(format!("{path}: {e}")))?;
        Ok((data.series, data.labels))
    }
}

fn cmd_train(args: &Args) -> Result<(), CliError> {
    let lenient = args.has("lenient");
    let (train, _) = load_series(args.require("train")?, lenient)?;
    let val = match args.get("val") {
        Some(p) if !p.is_empty() => load_series(p, lenient)?.0,
        _ => train.clone(),
    };
    let cfg = TfmaeConfig {
        epochs: args.num("epochs", 5)?,
        win_len: args.num("win", 100)?,
        d_model: args.num("d-model", 64)?,
        layers: args.num("layers", 2)?,
        r_temporal: args.num("rt", 0.25)?,
        r_frequency: args.num("rf", 0.25)?,
        patch_len: args.num("patch-len", 1)?,
        seed: args.num("seed", 7)?,
        ..TfmaeConfig::default()
    };
    cfg.validate().map_err(CliError::Usage)?;
    let model_path = args.require("model")?.to_string();
    let mut det = TfmaeDetector::new(cfg);
    det.fit(&train, &val);
    println!(
        "trained on {} observations × {} channels: {} steps in {:.2}s (final loss {:.4})",
        train.len(),
        train.dims(),
        det.fit_report.steps,
        det.fit_report.seconds,
        det.fit_report.final_loss
    );
    let report = &det.train_report;
    if report.rollbacks > 0 || report.skipped_batches > 0 {
        eprintln!(
            "warning: training hit faults: {} rollback(s), {} skipped batch(es), final lr {:.2e}{}",
            report.rollbacks,
            report.skipped_batches,
            report.final_lr,
            if report.aborted { " — aborted early on last good parameters" } else { "" }
        );
    }
    det.save(&model_path).map_err(|e| CliError::Checkpoint(e.to_string()))?;
    println!("saved checkpoint to {model_path}");
    Ok(())
}

fn check_dims(det: &TfmaeDetector, input: &TimeSeries) -> Result<(), CliError> {
    let model_dims = det.model().map(|m| m.dims()).unwrap_or(0);
    if input.dims() != model_dims {
        return Err(CliError::Data(format!(
            "input has {} channels but the model was trained on {model_dims}",
            input.dims()
        )));
    }
    Ok(())
}

fn load_model(args: &Args) -> Result<TfmaeDetector, CliError> {
    let path = args.require("model")?;
    TfmaeDetector::load(path).map_err(|e| CliError::Checkpoint(format!("{path}: {e}")))
}

fn cmd_score(args: &Args) -> Result<(), CliError> {
    let lenient = args.has("lenient");
    let det = load_model(args)?;
    let (input, _) = load_series(args.require("input")?, lenient)?;
    check_dims(&det, &input)?;
    let scores = det.score(&input);
    let out = args.require("out")?;
    let series = TimeSeries::new(scores.clone(), scores.len(), 1);
    write_csv(out, &series, None).map_err(|e| CliError::Data(e.to_string()))?;
    println!("wrote {} scores to {out}", scores.len());
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), CliError> {
    let lenient = args.has("lenient");
    let det = load_model(args)?;
    let (input, labels) = load_series(args.require("input")?, lenient)?;
    check_dims(&det, &input)?;
    let labels = labels.ok_or_else(|| {
        CliError::Data("evaluate requires a `label` column in the input CSV".into())
    })?;
    let ratio: f64 = args.num("ratio", 0.01)?;

    let scores = det.score(&input);
    let threshold_scores = match args.get("val") {
        Some(p) if !p.is_empty() => {
            let (val, _) = load_series(p, lenient)?;
            check_dims(&det, &val)?;
            det.score(&val)
        }
        _ => scores.clone(),
    };
    let delta = threshold_for_ratio(&threshold_scores, ratio);
    let pred = apply_threshold(&scores, delta);
    let prf = Prf::from_predictions(&point_adjust(&pred, &labels), &labels);
    println!("threshold δ = {delta:.6} (ratio {ratio})");
    println!("P = {:.2}%  R = {:.2}%  F1 = {:.2}%", prf.precision, prf.recall, prf.f1);
    println!(
        "ROC-AUC = {:.4}  PR-AUC = {:.4}",
        roc_auc(&scores, &labels),
        pr_auc(&scores, &labels)
    );
    Ok(())
}

fn parse_precision(v: &str) -> Result<Precision, CliError> {
    Precision::parse(v).map_err(CliError::Usage)
}

fn cmd_quantize(args: &Args) -> Result<(), CliError> {
    let precision = match args.get("precision") {
        None => Precision::Bf16,
        Some(v) => match parse_precision(v)? {
            Precision::F32 => {
                return Err(CliError::Usage(
                    "quantize needs --precision bf16 or int8 (f32 is the input format)".into(),
                ))
            }
            p => p,
        },
    };
    let det = load_model(args)?;
    let out = args.require("out")?;
    det.save_quantized(out, precision)
        .map_err(|e| CliError::Checkpoint(format!("{out}: {e}")))?;
    // Report the sizes from the same deterministic quantization the save
    // just performed; the model is guaranteed fitted by a successful save.
    let model = det.model().ok_or_else(|| CliError::Internal("unfitted after save".into()))?;
    let qs = QuantStore::from_params(&model.ps, precision);
    println!(
        "wrote {precision} checkpoint to {out}: {} weight panels, {:.1} KiB quantized \
         (f32 equivalent {:.1} KiB, {:.2}x smaller at serve time)",
        qs.num_params(),
        qs.bytes() as f64 / 1024.0,
        qs.f32_bytes() as f64 / 1024.0,
        qs.f32_bytes() as f64 / qs.bytes().max(1) as f64,
    );
    println!("serve it with: tfmae serve --model {out} ... (stored precision applies; override with --precision)");
    Ok(())
}

/// Scored ticks between periodic metrics-file rewrites during a replay.
const METRICS_FLUSH_EVERY: u64 = 256;

/// Resolves an optional metrics output path, creating its parent directory.
fn metrics_path(args: &Args, key: &str) -> Result<Option<PathBuf>, CliError> {
    match args.get(key) {
        None => Ok(None),
        Some("") => Err(CliError::Usage(format!("--{key} requires a file path"))),
        Some(v) => {
            let p = PathBuf::from(v);
            if let Some(parent) = p.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| CliError::Data(format!("{}: {e}", parent.display())))?;
                }
            }
            Ok(Some(p))
        }
    }
}

/// Writes the current global-registry state to the requested metrics files.
/// Failures here are internal (exit 5): the replay itself succeeded and the
/// paths were already prepared — only the telemetry write went wrong.
fn write_metrics(json: Option<&PathBuf>, prom: Option<&PathBuf>) -> Result<(), CliError> {
    let reg = tfmae_obs::global();
    if let Some(p) = json {
        std::fs::write(p, tfmae_obs::json_snapshot(reg))
            .map_err(|e| CliError::Internal(format!("{}: {e}", p.display())))?;
    }
    if let Some(p) = prom {
        std::fs::write(p, tfmae_obs::prometheus_text(reg))
            .map_err(|e| CliError::Internal(format!("{}: {e}", p.display())))?;
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    // Flag sanity up front, before the model load and data replay: operator
    // mistakes should fail in milliseconds, not after minutes of scoring.
    if args.get("out-dir") == Some("") {
        return Err(CliError::Usage("--out-dir requires a directory path".into()));
    }
    if args.get("threshold").is_none() && args.get("val").map_or(true, str::is_empty) {
        return Err(CliError::Usage(
            "serve needs --threshold or --val (to derive one at --ratio)".into(),
        ));
    }
    let metrics_out = metrics_path(args, "metrics-out")?;
    let metrics_prom = metrics_path(args, "metrics-prom")?;
    let metrics_on = metrics_out.is_some() || metrics_prom.is_some();

    let adapt_on = args.has("adapt");
    for key in [
        "adapt-ratio",
        "adapt-every",
        "adapt-min-samples",
        "adapt-window",
        "adapt-holdoff",
        "adapt-finetune",
        "adapt-save",
    ] {
        if !adapt_on && args.has(key) {
            return Err(CliError::Usage(format!("--{key} requires --adapt")));
        }
    }
    let adapt_save = match args.get("adapt-save") {
        Some("") => return Err(CliError::Usage("--adapt-save requires a file path".into())),
        Some(p) => Some(PathBuf::from(p)),
        None => None,
    };

    let lenient = args.has("lenient");
    // The full parse reads the optional adaptive section (so a --adapt-save'd
    // model resumes δ and the rollback backoff seamlessly) and the quant
    // section's stored precision. Neither is applied yet: the detector is
    // still the exact f32 model, so threshold calibration below is identical
    // across precisions.
    let path = args.require("model")?;
    let (det, resumed, stored_precision) = TfmaeDetector::load_full(path)
        .map_err(|e| CliError::Checkpoint(format!("{path}: {e}")))?;
    let resumed = if adapt_on { resumed } else { None };
    let precision = match args.get("precision") {
        Some(v) => parse_precision(v)?,
        None => stored_precision.unwrap_or(Precision::F32),
    };
    if precision != Precision::F32 && args.has("adapt-finetune") {
        eprintln!(
            "warning: --precision {precision} releases the f32 weights; background \
             fine-tuning is disabled (threshold recalibration still runs)"
        );
    }
    if precision != Precision::F32 && adapt_save.is_some() {
        return Err(CliError::Usage(format!(
            "--adapt-save cannot checkpoint a {precision} engine (the f32 weights are \
             released); serve with --precision f32 to save an adapted model"
        )));
    }
    let inputs = args.get_all("input");
    if inputs.is_empty() {
        return Err(CliError::Usage("serve requires at least one --input".into()));
    }
    let mut streams_data = Vec::with_capacity(inputs.len());
    for p in &inputs {
        let (s, _) = load_series(p, lenient)?;
        check_dims(&det, &s)?;
        streams_data.push(s);
    }

    let hop: usize = args.num("hop", (det.cfg.win_len / 4).max(1))?;
    let refresh_every: usize = args.num("refresh-every", 64)?;
    let shards: usize = args.num("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be >= 1".into()));
    }
    let val = match args.get("val") {
        Some(p) if !p.is_empty() => {
            let (v, _) = load_series(p, lenient)?;
            check_dims(&det, &v)?;
            Some(v)
        }
        _ => None,
    };
    let threshold: f32 = match (args.get("threshold"), &val) {
        (Some(t), _) => t
            .parse()
            .map_err(|_| CliError::Usage(format!("bad value for --threshold: {t:?}")))?,
        (None, Some(v)) => {
            let ratio: f64 = args.num("ratio", 0.01)?;
            threshold_for_ratio(&det.score(v), ratio)
        }
        (None, None) => {
            return Err(CliError::Usage(
                "serve needs --threshold or --val (to derive one at --ratio)".into(),
            ))
        }
    };

    let mut cfg = ServingConfig::new(threshold, hop);
    cfg.refresh_every = refresh_every.max(1);
    cfg.incremental = !args.has("from-scratch");
    cfg.precision = precision;
    cfg.shards = shards;
    let incremental = cfg.incremental;
    let mut engine = ServingEngine::new(det, cfg);
    if adapt_on {
        let base = AdaptationConfig::enabled();
        let acfg = AdaptationConfig {
            target_ratio: args.num("adapt-ratio", base.target_ratio)?,
            recalibrate_every: args.num("adapt-every", base.recalibrate_every)?,
            min_samples: args.num("adapt-min-samples", base.min_samples)?,
            window: args.num("adapt-window", base.window)?,
            holdoff: args.num("adapt-holdoff", base.holdoff)?,
            finetune: FinetuneConfig { enabled: args.has("adapt-finetune"), ..base.finetune },
            ..base
        };
        if !(acfg.target_ratio > 0.0 && acfg.target_ratio < 1.0) {
            return Err(CliError::Usage(format!(
                "--adapt-ratio must be in (0, 1), got {}",
                acfg.target_ratio
            )));
        }
        engine.set_adaptation(acfg);
        if let Some(snap) = &resumed {
            engine.resume_adaptive(snap);
            println!(
                "resumed adaptive state: δ {:.6}, {} prior recalibration(s), cadence ×{}",
                snap.threshold, snap.recalibrations, snap.cadence_mult
            );
        }
    }
    if metrics_on {
        // Turn the registry on and publish the serving executor so its
        // dispatch/pool counters appear in the exports alongside the
        // serve.* instruments.
        engine.detector().executor().register_obs(tfmae_obs::global());
        tfmae_obs::set_enabled(true);
    }
    let ids: Vec<usize> = (0..streams_data.len()).map(|_| engine.add_stream()).collect();
    if let Some(v) = &val {
        for &id in &ids {
            engine.calibrate_stream(id, v);
        }
    }

    // Replay: one tick interleaves the next row of every still-live stream.
    // Tick latency goes straight into a registered histogram (ungated — the
    // summary line below needs it even without the metrics flags).
    let tick_hist = tfmae_obs::global().histogram("serve.tick_ns");
    let max_len = streams_data.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut per_stream: Vec<Vec<tfmae_core::ServingVerdict>> =
        vec![Vec::new(); streams_data.len()];
    let started = std::time::Instant::now();
    for t in 0..max_len {
        let rows: Vec<(usize, &[f32])> = ids
            .iter()
            .filter(|&&id| t < streams_data[id].len())
            .map(|&id| (id, streams_data[id].row(t)))
            .collect();
        let tick_started = std::time::Instant::now();
        let out = engine.tick(&rows);
        let elapsed = tick_started.elapsed().as_nanos();
        if !out.verdicts.is_empty() {
            tick_hist.record(u64::try_from(elapsed).unwrap_or(u64::MAX));
            if metrics_on && tick_hist.count() % METRICS_FLUSH_EVERY == 0 {
                write_metrics(metrics_out.as_ref(), metrics_prom.as_ref())?;
            }
        }
        // Every replayed id was registered above, so rejections here mean a
        // CLI bug, not operator error — surface loudly rather than dropping.
        for r in &out.rejections {
            eprintln!("warning: row for stream {} rejected: {:?}", r.stream, r.reason);
        }
        for v in out.verdicts {
            per_stream[v.stream].push(v);
        }
    }
    let total_secs = started.elapsed().as_secs_f64();

    let total_rows: usize = streams_data.iter().map(|s| s.len()).sum();
    let total_verdicts: usize = per_stream.iter().map(|v| v.len()).sum();
    let anomalies: usize = per_stream
        .iter()
        .flat_map(|v| v.iter())
        .filter(|v| v.verdict.is_anomaly)
        .count();
    let ticks = tick_hist.snapshot();
    println!(
        "served {} stream(s) on {shards} shard(s): {total_rows} rows, {total_verdicts} verdicts, \
         {anomalies} anomalies (threshold δ = {threshold:.6}, hop {hop}, precision {precision}, {})",
        streams_data.len(),
        if incremental { format!("incremental, refresh every {refresh_every}") } else { "from-scratch masking".to_string() },
    );
    println!(
        "throughput {:.0} rows/s; scoring ticks: {} at p50 {:.2} ms, p99 {:.2} ms",
        total_rows as f64 / total_secs.max(1e-9),
        ticks.count,
        ticks.quantile(0.50) as f64 / 1e6,
        ticks.quantile(0.99) as f64 / 1e6,
    );
    if adapt_on {
        let st = engine.adaptation_stats();
        println!(
            "adaptation: δ {:.6} (started at {threshold:.6}), {} recalibration(s), \
             {} fine-tune update(s) over {} step(s), {} rollback(s), cadence ×{}",
            st.threshold,
            st.recalibrations,
            st.finetune_updates,
            st.finetune_steps,
            st.rollbacks,
            st.cadence_mult,
        );
    }
    for &id in &ids {
        let h = engine.health(id);
        if h.imputed_rows > 0 || h.degraded_rows > 0 || h.quarantine_entries > 0 {
            eprintln!(
                "warning: stream {id} faults: {} imputed, {} degraded, {} quarantined row(s), {} quarantine entr(ies)",
                h.imputed_rows, h.degraded_rows, h.quarantined_rows, h.quarantine_entries
            );
        }
    }

    if let Some(dir) = args.get("out-dir") {
        use std::io::Write as _;
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| CliError::Data(format!("{}: {e}", dir.display())))?;
        for &id in &ids {
            let path = dir.join(format!("stream_{id}.csv"));
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(&path).map_err(|e| CliError::Data(e.to_string()))?,
            );
            let write = (|| -> std::io::Result<()> {
                writeln!(f, "t,score,is_anomaly,quality")?;
                for v in &per_stream[id] {
                    writeln!(
                        f,
                        "{},{},{},{:?}",
                        v.verdict.t,
                        v.verdict.score,
                        v.verdict.is_anomaly as u8,
                        v.verdict.quality
                    )?;
                }
                f.flush()
            })();
            write.map_err(|e| CliError::Data(format!("{}: {e}", path.display())))?;
        }
        println!("wrote per-stream verdicts to {}", dir.display());
    }

    if let Some(path) = &adapt_save {
        let snap = engine.adaptive_snapshot();
        engine
            .detector()
            .save_with_adaptive(path, Some(&snap))
            .map_err(|e| CliError::Checkpoint(format!("{}: {e}", path.display())))?;
        println!("wrote adapted model + adaptive state to {}", path.display());
    }

    if metrics_on {
        write_metrics(metrics_out.as_ref(), metrics_prom.as_ref())?;
        for p in [&metrics_out, &metrics_prom].into_iter().flatten() {
            println!("wrote metrics to {}", p.display());
        }
    }
    Ok(())
}

/// `tfmae server` — run the network serving front-end until a drain
/// completes (SIGTERM/SIGINT or `POST /v1/shutdown`).
fn cmd_server(args: &Args) -> Result<(), CliError> {
    let listen = args.require("listen")?;
    let registry = PathBuf::from(args.require("registry")?);
    let mut cfg = tfmae_server::ServerConfig::new(listen, registry);
    cfg.shards = args.num("shards", cfg.shards)?.max(1);
    cfg.workers = args.num("workers", cfg.workers)?.max(1);
    cfg.queue_cap = args.num("queue-cap", cfg.queue_cap)?.max(1);
    cfg.max_body = args.num("max-body", cfg.max_body)?.max(1024);
    if let Some(mb) = args.get("max-batch") {
        let mb: usize = mb
            .parse()
            .map_err(|_| CliError::Usage(format!("bad value for --max-batch: {mb:?}")))?;
        cfg.max_batch = Some(mb.max(1));
    }
    cfg.drain_grace = std::time::Duration::from_secs(args.num("drain-grace-secs", 5u64)?);
    tfmae_server::install_term_handler();
    let registry_display = cfg.registry.display().to_string();
    let handle = tfmae_server::Server::start(cfg)
        .map_err(|e| CliError::Data(format!("server start: {e}")))?;
    println!(
        "tfmae server listening on {} (registry {registry_display}; SIGTERM or POST /v1/shutdown drains)",
        handle.addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = handle.join();
    println!(
        "drain complete: {} rows scored, {} verdicts delivered, {} unpolled, {} rows rejected",
        report.rows_scored,
        report.verdicts_delivered,
        report.verdicts_unpolled,
        report.rejected_rows
    );
    Ok(())
}

/// `tfmae models ls` — list registry checkpoints without loading them.
fn cmd_models(sub: Option<&str>, args: &Args) -> Result<(), CliError> {
    match sub {
        Some("ls") => {
            let dir = PathBuf::from(args.require("registry")?);
            let entries = tfmae_server::scan_registry(&dir)
                .map_err(|e| CliError::Data(format!("{}: {e}", dir.display())))?;
            print!("{}", tfmae_server::models_table(&entries));
            Ok(())
        }
        _ => Err(CliError::Usage("usage: tfmae models ls --registry DIR".into())),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().map(String::as_str) else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd {
        "simulate" => cmd_simulate(&args),
        "train" => cmd_train(&args),
        "score" => cmd_score(&args),
        "evaluate" => cmd_evaluate(&args),
        "quantize" => cmd_quantize(&args),
        "serve" => cmd_serve(&args),
        "server" => cmd_server(&args),
        "models" => cmd_models(argv.get(1).map(String::as_str), &args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}\n\n{}", usage()))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}
