//! `tfmae` — command-line interface to the TFMAE reproduction.
//!
//! ```text
//! tfmae simulate --dataset smd --divisor 100 --out-dir data/      # write train/val/test CSVs
//! tfmae train    --train data/train.csv --val data/val.csv --model model.json
//! tfmae score    --model model.json --input data/test.csv --out scores.csv
//! tfmae evaluate --model model.json --input data/test.csv --ratio 0.005
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use tfmae_core::{TfmaeConfig, TfmaeDetector};
use tfmae_data::{generate, read_csv, write_csv, DatasetKind, Detector, TimeSeries};
use tfmae_metrics::{apply_threshold, point_adjust, pr_auc, roc_auc, threshold_for_ratio, Prf};

fn usage() -> &'static str {
    "tfmae — Temporal-Frequency Masked Autoencoders for time-series anomaly detection

USAGE:
  tfmae simulate --dataset <msl|psm|smd|swat|smap|global|seasonal> [--divisor N] [--seed N] --out-dir DIR
  tfmae train    --train FILE.csv [--val FILE.csv] --model OUT.json
                 [--epochs N] [--win N] [--d-model N] [--layers N] [--rt F] [--rf F] [--seed N]
  tfmae score    --model FILE.json --input FILE.csv --out FILE.csv
  tfmae evaluate --model FILE.json --input FILE.csv (--ratio F | --val FILE.csv --ratio F)
  tfmae help

CSV format: one row per observation, one numeric column per channel, optional
header, optional trailing `label` column (needed by `evaluate`)."
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                let value = args.get(i + 1).cloned().unwrap_or_default();
                flags.push((key.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Self { flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }
}

fn parse_dataset(name: &str) -> Result<DatasetKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "msl" => DatasetKind::Msl,
        "psm" => DatasetKind::Psm,
        "smd" => DatasetKind::Smd,
        "swat" => DatasetKind::Swat,
        "smap" => DatasetKind::Smap,
        "global" | "nips-ts-global" => DatasetKind::NipsTsGlobal,
        "seasonal" | "nips-ts-seasonal" => DatasetKind::NipsTsSeasonal,
        other => return Err(format!("unknown dataset {other:?}")),
    })
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let kind = parse_dataset(args.require("dataset")?)?;
    let divisor: usize = args.num("divisor", 100)?;
    let seed: u64 = args.num("seed", 7)?;
    let out_dir = PathBuf::from(args.require("out-dir")?);
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;

    let bench = generate(kind, seed, divisor);
    write_csv(out_dir.join("train.csv"), &bench.train, None).map_err(|e| e.to_string())?;
    write_csv(out_dir.join("val.csv"), &bench.val, None).map_err(|e| e.to_string())?;
    write_csv(out_dir.join("test.csv"), &bench.test, Some(&bench.test_labels))
        .map_err(|e| e.to_string())?;
    let hp = kind.paper_hparams();
    println!(
        "wrote {} simulator (dims={}, train={}, val={}, test={}, AR={:.1}%) to {}",
        kind.name(),
        bench.train.dims(),
        bench.train.len(),
        bench.val.len(),
        bench.test.len(),
        bench.realized_anomaly_ratio() * 100.0,
        out_dir.display()
    );
    println!(
        "paper hyper-parameters: --rt {} --rf {}  (threshold ratio r = {})",
        hp.r_t, hp.r_f, hp.r
    );
    Ok(())
}

fn load_series(path: &str) -> Result<(TimeSeries, Option<Vec<u8>>), String> {
    let data = read_csv(path).map_err(|e| e.to_string())?;
    Ok((data.series, data.labels))
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let (train, _) = load_series(args.require("train")?)?;
    let val = match args.get("val") {
        Some(p) => load_series(p)?.0,
        None => train.clone(),
    };
    let cfg = TfmaeConfig {
        epochs: args.num("epochs", 5)?,
        win_len: args.num("win", 100)?,
        d_model: args.num("d-model", 64)?,
        layers: args.num("layers", 2)?,
        r_temporal: args.num("rt", 0.25)?,
        r_frequency: args.num("rf", 0.25)?,
        seed: args.num("seed", 7)?,
        ..TfmaeConfig::default()
    };
    cfg.validate()?;
    let model_path = args.require("model")?.to_string();
    let mut det = TfmaeDetector::new(cfg);
    det.fit(&train, &val);
    println!(
        "trained on {} observations × {} channels: {} steps in {:.2}s (final loss {:.4})",
        train.len(),
        train.dims(),
        det.fit_report.steps,
        det.fit_report.seconds,
        det.fit_report.final_loss
    );
    det.save(&model_path).map_err(|e| e.to_string())?;
    println!("saved checkpoint to {model_path}");
    Ok(())
}

fn check_dims(det: &TfmaeDetector, input: &TimeSeries) -> Result<(), String> {
    let model_dims = det.model().map(|m| m.dims()).unwrap_or(0);
    if input.dims() != model_dims {
        return Err(format!(
            "input has {} channels but the model was trained on {model_dims}",
            input.dims()
        ));
    }
    Ok(())
}

fn cmd_score(args: &Args) -> Result<(), String> {
    let det = TfmaeDetector::load(args.require("model")?).map_err(|e| e.to_string())?;
    let (input, _) = load_series(args.require("input")?)?;
    check_dims(&det, &input)?;
    let scores = det.score(&input);
    let out = args.require("out")?;
    let series = TimeSeries::new(scores.clone(), scores.len(), 1);
    write_csv(out, &series, None).map_err(|e| e.to_string())?;
    println!("wrote {} scores to {out}", scores.len());
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let det = TfmaeDetector::load(args.require("model")?).map_err(|e| e.to_string())?;
    let (input, labels) = load_series(args.require("input")?)?;
    check_dims(&det, &input)?;
    let labels = labels.ok_or("evaluate requires a `label` column in the input CSV")?;
    let ratio: f64 = args.num("ratio", 0.01)?;

    let scores = det.score(&input);
    let threshold_scores = match args.get("val") {
        Some(p) => {
            let (val, _) = load_series(p)?;
            check_dims(&det, &val)?;
            det.score(&val)
        }
        None => scores.clone(),
    };
    let delta = threshold_for_ratio(&threshold_scores, ratio);
    let pred = apply_threshold(&scores, delta);
    let prf = Prf::from_predictions(&point_adjust(&pred, &labels), &labels);
    println!("threshold δ = {delta:.6} (ratio {ratio})");
    println!("P = {:.2}%  R = {:.2}%  F1 = {:.2}%", prf.precision, prf.recall, prf.f1);
    println!(
        "ROC-AUC = {:.4}  PR-AUC = {:.4}",
        roc_auc(&scores, &labels),
        pr_auc(&scores, &labels)
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().map(String::as_str) else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd {
        "simulate" => cmd_simulate(&args),
        "train" => cmd_train(&args),
        "score" => cmd_score(&args),
        "evaluate" => cmd_evaluate(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
