//! A tour of the two masking strategies (Figs. 3 and 4 of the paper),
//! rendered as ASCII so you can *see* what gets masked and why.
//!
//! ```text
//! cargo run --release --example masking_tour
//! ```

use rand::SeedableRng;
use tfmae::core::{cv_statistic, frequency_mask, temporal_mask, FreqMaskKind, TemporalMaskKind};
use tfmae::fft::amplitude_spectrum;

fn bar(v: f64, max: f64, width: usize) -> String {
    let n = ((v / max.max(1e-12)) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn main() {
    let t = 64;
    // A clean seasonal signal with one spike (observation anomaly) and a
    // short high-frequency burst (pattern anomaly).
    let mut x: Vec<f32> = (0..t)
        .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 16.0).sin())
        .collect();
    x[20] = 4.0; // global point anomaly
    for i in 44..52 {
        x[i] = (2.0 * std::f32::consts::PI * i as f32 / 3.0).sin(); // seasonal break
    }

    // ---------------- window-based temporal masking (Fig. 3) -------------
    println!("== window-based temporal masking (Eq. 1-5) ==");
    let stat = cv_statistic(&x, t, 1, 10, true);
    let max = stat.iter().cloned().fold(f64::MIN, f64::max);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mask = temporal_mask(&x, t, 1, 12, 10, TemporalMaskKind::Cv, true, &mut rng);
    for i in 0..t {
        let m = if mask.masked.contains(&i) { "MASK" } else { "    " };
        println!("t={i:<3} x={:>6.2}  {m}  cv {}", x[i], bar(stat[i], max, 30));
    }
    println!(
        "masked {} observations; the spike at t=20 and the burst windows are candidates\n",
        mask.masked.len()
    );

    // ---------------- amplitude-based frequency masking (Fig. 4) ---------
    println!("== amplitude-based frequency masking (Eq. 6-10) ==");
    let amp = amplitude_spectrum(&x.iter().map(|&v| v as f64).collect::<Vec<_>>());
    let amax = amp.iter().cloned().fold(f64::MIN, f64::max);
    let fm = frequency_mask(&x, t, 1, 10, FreqMaskKind::Amplitude, &mut rng);
    for (i, &a) in amp.iter().enumerate() {
        let m = if fm.masked_bins[0].contains(&i) { "MASK" } else { "    " };
        println!("bin={i:<3} |X|={a:>7.3}  {m}  {}", bar(a, amax, 30));
    }
    println!(
        "masked the {} smallest-amplitude bins; the dominant seasonal bin (4) survives",
        fm.masked_bins[0].len()
    );

    // The purified (base) signal has the burst attenuated:
    let burst_energy_raw: f32 = (44..52).map(|i| x[i] * x[i]).sum();
    let burst_energy_masked: f32 = (44..52).map(|i| fm.base[i] * fm.base[i]).sum();
    println!(
        "burst energy raw={burst_energy_raw:.2} vs after masking={burst_energy_masked:.2} \
         (pattern anomaly attenuated before the autoencoder sees it)"
    );

    // High-frequency masking (the `w/ HMF` ablation) for contrast:
    let hmf = frequency_mask(&x, t, 1, 10, FreqMaskKind::HighFreq, &mut rng);
    println!("\nw/ HMF would mask bins {:?} — frequency position, not evidence", hmf.masked_bins[0]);
}
