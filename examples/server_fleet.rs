//! Server-fleet monitoring scenario (the paper's PSM/SMD motivation):
//! correlated load channels with level shifts and spikes, scored by TFMAE
//! and two baselines side by side.
//!
//! ```text
//! cargo run --release --example server_fleet
//! ```

use tfmae::baselines::{IsolationForest, TranAdLite};
use tfmae::prelude::*;

fn main() {
    let bench = generate(DatasetKind::Psm, 7, 150);
    let hp = bench.kind.paper_hparams();
    println!(
        "PSM simulator: {} channels, anomaly ratio {:.1}% (published: 27.8%)",
        bench.train.dims(),
        bench.realized_anomaly_ratio() * 100.0
    );

    // TFMAE with the paper's PSM masking ratios.
    let cfg = TfmaeConfig { r_temporal: hp.r_t, r_frequency: hp.r_f, ..TfmaeConfig::default() };
    let mut tfmae = TfmaeDetector::new(cfg);
    let tfmae_prf = evaluate(&mut tfmae, &bench, hp.r);

    // Two comparators under the identical protocol.
    let mut iforest = IsolationForest::new(100, 256, 7);
    let iforest_prf = evaluate(&mut iforest, &bench, hp.r);
    let mut tranad = TranAdLite::new(DeepProtocol::default(), 1);
    let tranad_prf = evaluate(&mut tranad, &bench, hp.r);

    println!("\n{:<10} {:>8} {:>8} {:>8}", "method", "P%", "R%", "F1%");
    for (name, prf) in
        [("IForest", iforest_prf), ("TranAD", tranad_prf), ("TFMAE", tfmae_prf)]
    {
        println!("{:<10} {:>8.2} {:>8.2} {:>8.2}", name, prf.precision, prf.recall, prf.f1);
    }

    // Show the anomaly-score trace around the first ground-truth segment.
    let scores = tfmae.score(&bench.test);
    if let Some(first) = bench.test_labels.iter().position(|&l| l == 1) {
        let lo = first.saturating_sub(5);
        let hi = (first + 10).min(scores.len());
        println!("\nscore trace around first anomaly (t={first}):");
        for t in lo..hi {
            let marker = if bench.test_labels[t] == 1 { "  <-- anomaly" } else { "" };
            println!("  t={t:<6} score={:.4}{}", scores[t], marker);
        }
    }
}
