//! Quickstart: train TFMAE on a simulated benchmark and evaluate it with
//! the paper's protocol.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tfmae::prelude::*;

fn main() {
    // 1. Get data. The simulators match Table II's shape (dims, split
    //    ratios, anomaly ratio); `divisor` scales the published lengths
    //    down so this runs in seconds on a laptop CPU.
    let bench = generate(DatasetKind::NipsTsGlobal, /*seed=*/ 7, /*divisor=*/ 200);
    println!(
        "dataset {:<16} dims={} train={} val={} test={} anomaly-ratio={:.1}%",
        bench.kind.name(),
        bench.train.dims(),
        bench.train.len(),
        bench.val.len(),
        bench.test.len(),
        bench.realized_anomaly_ratio() * 100.0
    );

    // 2. Configure TFMAE. `TfmaeConfig::default()` is the CPU-friendly
    //    setting; `TfmaeConfig::paper()` is the exact §V-A4 configuration.
    let hp = bench.kind.paper_hparams();
    let cfg = TfmaeConfig {
        r_temporal: hp.r_t,
        r_frequency: hp.r_f,
        epochs: 2,
        ..TfmaeConfig::default()
    };

    // 3. Train on the (unlabeled, contaminated) training split.
    let mut detector = TfmaeDetector::new(cfg);
    detector.fit(&bench.train, &bench.val);
    println!(
        "trained: {} steps in {:.2}s, {:.1} MiB accounted, final loss {:.4}",
        detector.fit_report.steps,
        detector.fit_report.seconds,
        detector.fit_report.bytes as f64 / (1024.0 * 1024.0),
        detector.fit_report.final_loss,
    );

    // 4. Threshold on the validation quantile (Eq. 17) and evaluate with
    //    point adjustment, exactly as the paper does.
    let delta = threshold_for_ratio(&detector.score(&bench.val), hp.r);
    let scores = detector.score(&bench.test);
    let pred = apply_threshold(&scores, delta);
    let adjusted = point_adjust(&pred, &bench.test_labels);
    let prf = Prf::from_predictions(&adjusted, &bench.test_labels);
    println!(
        "TFMAE on {}: P={:.2}% R={:.2}% F1={:.2}%  (threshold δ={delta:.4})",
        bench.kind.name(),
        prf.precision,
        prf.recall,
        prf.f1
    );

    // 5. Threshold-free sanity check.
    println!(
        "ROC-AUC={:.3} PR-AUC={:.3}",
        roc_auc(&scores, &bench.test_labels),
        pr_auc(&scores, &bench.test_labels)
    );
}
