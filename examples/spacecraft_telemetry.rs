//! Spacecraft-telemetry scenario (the paper's MSL/SMAP motivation): detect
//! point and contextual anomalies in many-channel telemetry, and show how
//! the temporal mask concentrates on the anomalous region.
//!
//! ```text
//! cargo run --release --example spacecraft_telemetry
//! ```

use tfmae::core::{cv_statistic, temporal_mask, TemporalMaskKind};
use tfmae::prelude::*;

fn main() {
    let bench = generate(DatasetKind::Msl, 7, 120);
    let hp = bench.kind.paper_hparams();
    println!(
        "MSL simulator: {} channels, train {} / val {} / test {} observations",
        bench.train.dims(),
        bench.train.len(),
        bench.val.len(),
        bench.test.len()
    );

    // --- Peek at the masking machinery on one window of the test set. ---
    let win_len = 100;
    let window = bench.test.slice(0..win_len);
    let stat = cv_statistic(window.data(), win_len, window.dims(), 10, true);
    let peak = stat.iter().cloned().fold(f64::MIN, f64::max);
    println!("window CV statistic: max={peak:.3}, mean={:.3}", stat.iter().sum::<f64>() / win_len as f64);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let mask = temporal_mask(
        window.data(),
        win_len,
        window.dims(),
        (win_len as f64 * hp.r_t) as usize,
        10,
        TemporalMaskKind::Cv,
        true,
        &mut rng,
    );
    println!(
        "temporal mask covers {} of {} observations (r_T = {:.0}%)",
        mask.masked.len(),
        win_len,
        hp.r_t * 100.0
    );

    // --- Full pipeline. ---
    let cfg = TfmaeConfig { r_temporal: hp.r_t, r_frequency: hp.r_f, ..TfmaeConfig::default() };
    let mut det = TfmaeDetector::new(cfg);
    let prf = evaluate(&mut det, &bench, hp.r);
    println!(
        "TFMAE on the MSL simulator: P={:.2}% R={:.2}% F1={:.2}%",
        prf.precision, prf.recall, prf.f1
    );

    // --- Where do the alarms fall? Print the first few detected segments. ---
    let delta = threshold_for_ratio(&det.score(&bench.val), hp.r);
    let pred = apply_threshold(&det.score(&bench.test), delta);
    let adjusted = point_adjust(&pred, &bench.test_labels);
    let mut shown = 0;
    let mut t = 0;
    while t < adjusted.len() && shown < 5 {
        if adjusted[t] == 1 {
            let start = t;
            while t < adjusted.len() && adjusted[t] == 1 {
                t += 1;
            }
            let truth_hit = bench.test_labels[start..t].contains(&1);
            println!(
                "alarm segment [{start}, {t})  length={}  ground-truth-anomaly={truth_hit}",
                t - start
            );
            shown += 1;
        } else {
            t += 1;
        }
    }
}
