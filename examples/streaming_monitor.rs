//! Online monitoring: feed observations one at a time into a trained TFMAE
//! and raise alarms live — the observability deployment the paper's
//! introduction motivates ("timely alerts for anomalies").
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use tfmae::core::StreamingDetector;
use tfmae::prelude::*;

fn main() {
    // Train offline on the PSM simulator.
    let bench = generate(DatasetKind::Psm, 7, 200);
    let hp = bench.kind.paper_hparams();
    let cfg = TfmaeConfig { r_temporal: hp.r_t, r_frequency: hp.r_f, epochs: 4, ..TfmaeConfig::default() };
    let mut det = TfmaeDetector::new(cfg);
    det.fit(&bench.train, &bench.val);

    // Calibrate the alarm threshold on validation scores (Eq. 17).
    let delta = threshold_for_ratio(&det.score(&bench.val), hp.r);
    println!("calibrated threshold δ = {delta:.4} from {} validation points", bench.val.len());

    // Save + reload through a checkpoint, as a deployment would.
    let path = std::env::temp_dir().join("tfmae_streaming_demo.json");
    det.save(&path).expect("save checkpoint");
    let det = TfmaeDetector::load(&path).expect("load checkpoint");
    let _ = std::fs::remove_file(&path);

    // Go online: push the test stream one observation at a time.
    let mut monitor = StreamingDetector::with_default_hop(det, delta);
    let mut alarms = 0usize;
    let mut true_alarms = 0usize;
    let mut scored = 0usize;
    for t in 0..bench.test.len() {
        for verdict in monitor.push(bench.test.row(t)) {
            scored += 1;
            if verdict.is_anomaly {
                alarms += 1;
                let truth = bench.test_labels[verdict.t as usize] == 1;
                true_alarms += usize::from(truth);
                if alarms <= 8 {
                    println!(
                        "ALARM t={:<6} score={:.4} ground-truth-anomaly={truth}",
                        verdict.t, verdict.score
                    );
                }
            }
        }
    }
    println!(
        "\nstream finished: {scored} observations scored online, {alarms} alarms, \
         {true_alarms} on ground-truth anomalies"
    );
    println!(
        "test split has {} anomalous observations ({:.1}%)",
        bench.test_labels.iter().filter(|&&l| l == 1).count(),
        bench.realized_anomaly_ratio() * 100.0
    );
}
