//! Run the entire Table III roster plus TFMAE on one simulated benchmark
//! and print a mini leaderboard — a small-scale preview of
//! `cargo run -p tfmae-bench --bin table3_main`.
//!
//! ```text
//! cargo run --release --example baseline_shootout [dataset] [divisor]
//! ```
//! where `dataset` is one of `msl|psm|smd|swat|smap|global|seasonal`
//! (default `seasonal`) and `divisor` scales the published lengths
//! (default 200 — bigger is faster).

use tfmae::prelude::*;

fn parse_kind(s: &str) -> DatasetKind {
    match s.to_ascii_lowercase().as_str() {
        "msl" => DatasetKind::Msl,
        "psm" => DatasetKind::Psm,
        "smd" => DatasetKind::Smd,
        "swat" => DatasetKind::Swat,
        "smap" => DatasetKind::Smap,
        "global" => DatasetKind::NipsTsGlobal,
        "seasonal" => DatasetKind::NipsTsSeasonal,
        other => panic!("unknown dataset {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = parse_kind(args.get(1).map(String::as_str).unwrap_or("seasonal"));
    let divisor: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    let bench = generate(kind, 7, divisor);
    let hp = kind.paper_hparams();
    println!(
        "benchmark {} (divisor {divisor}): {} dims, {}/{}/{} split, AR {:.1}%\n",
        kind.name(),
        bench.train.dims(),
        bench.train.len(),
        bench.val.len(),
        bench.test.len(),
        bench.realized_anomaly_ratio() * 100.0
    );

    let mut rows: Vec<(String, Prf, f64)> = Vec::new();

    for mut det in table3_roster(DeepProtocol::default()) {
        let start = std::time::Instant::now();
        let prf = evaluate(det.as_mut(), &bench, hp.r);
        rows.push((det.name(), prf, start.elapsed().as_secs_f64()));
        eprintln!("  finished {}", det.name());
    }

    let cfg = TfmaeConfig { r_temporal: hp.r_t, r_frequency: hp.r_f, ..TfmaeConfig::default() };
    let mut tfmae = TfmaeDetector::new(cfg);
    let start = std::time::Instant::now();
    let prf = evaluate(&mut tfmae, &bench, hp.r);
    rows.push(("TFMAE".into(), prf, start.elapsed().as_secs_f64()));

    rows.sort_by(|a, b| b.1.f1.partial_cmp(&a.1.f1).unwrap());
    println!("\n{:<12} {:>8} {:>8} {:>8} {:>9}", "method", "P%", "R%", "F1%", "time(s)");
    for (name, prf, secs) in &rows {
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>9.2}",
            name, prf.precision, prf.recall, prf.f1, secs
        );
    }
}
